"""Experiment E7 — availability: quorum tuning vs unanimous update.

Quantifies the paper's availability claims exactly (no simulation noise —
the analysis enumerates node-up subsets):

* weighted voting lets availability be tuned from unanimous-update
  behaviour to majority behaviour (section 1 / section 5);
* the naive per-entry-version scheme's ambiguity resolution ("consult an
  additional representative") costs measurable delete availability
  (section 2).
"""

from benchmarks.conftest import run_once
from repro.core.config import SuiteConfig
from repro.sim.availability import analyze
from repro.sim.report import format_table

CONFIGS = {
    "1-1-1 (no replication)": SuiteConfig.from_xyz("1-1-1"),
    "3 unanimous (R=1,W=3)": SuiteConfig.unanimous(3),
    "3-2-2": SuiteConfig.from_xyz("3-2-2"),
    "5 unanimous (R=1,W=5)": SuiteConfig.unanimous(5),
    "5-3-3 (majority)": SuiteConfig.uniform(5, 3, 3),
    "5-2-4 (read-tuned)": SuiteConfig.uniform(5, 2, 4),
    "weighted [3,1,1] R=3 W=3": SuiteConfig(
        votes={"big": 3, "s1": 1, "s2": 1}, read_quorum=3, write_quorum=3
    ),
}

P_VALUES = [0.80, 0.90, 0.95, 0.99]


def test_availability_sweep(benchmark):
    def experiment():
        table = {}
        for label, config in CONFIGS.items():
            table[label] = [analyze(config, p) for p in P_VALUES]
        return table

    results = run_once(benchmark, experiment)

    headers = ["configuration"] + [f"write avail @p={p}" for p in P_VALUES]
    rows = []
    for label, points in results.items():
        rows.append([label] + [f"{pt.write_availability:.4f}" for pt in points])
    print("\n" + format_table(headers, rows, title="Write availability"))

    headers2 = ["configuration"] + [
        f"naive-delete avail @p={p}" for p in P_VALUES
    ]
    rows2 = []
    for label, points in results.items():
        rows2.append(
            [label] + [f"{pt.naive_delete_availability:.4f}" for pt in points]
        )
    print(
        "\n"
        + format_table(
            headers2,
            rows2,
            title="Delete availability if the section 2 naive scheme "
            "must consult an extra representative",
        )
    )

    # The paper's qualitative claims, as assertions:
    at90 = {label: points[1] for label, points in results.items()}
    # 1. Majority voting writes beat unanimous writes, massively.
    assert (
        at90["5-3-3 (majority)"].write_availability
        > at90["5 unanimous (R=1,W=5)"].write_availability + 0.3
    )
    # 2. Any replication beats none for reads at equal quorum tuning.
    assert (
        at90["3-2-2"].read_availability
        > at90["1-1-1 (no replication)"].read_availability
    )
    # 3. The naive scheme's deletes are strictly less available.
    for label in ("3-2-2", "5-3-3 (majority)"):
        point = at90[label]
        assert point.naive_delete_availability < point.write_availability
    benchmark.extra_info["write_availability_at_0.9"] = {
        label: round(pt.write_availability, 4) for label, pt in at90.items()
    }
