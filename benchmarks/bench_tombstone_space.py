"""Experiment E16 — space reclamation: coalescing vs tombstones (§2).

The paper rejects tombstones because "the space occupied by 'deleted'
entries could not easily be reclaimed" without a garbage collection
operation that "is complex and would itself be a concurrency bottleneck."
The gap-version algorithm instead reclaims space *inside* the delete
operation (coalescing removes ghosts as a side effect), so stale entries
are self-limiting.

The benchmark runs identical balanced churn through three systems and
reports stale-entry populations:

* the paper's algorithm — ghosts stay bounded with no extra machinery;
* tombstones without GC — dead entries grow linearly with deletions;
* tombstones with periodic GC — bounded, but each GC needs every replica
  up (availability bottleneck) and whole-directory mutual exclusion
  (the concurrency simulator's "whole" granularity prices that).
"""

import random

from benchmarks.conftest import run_once
from repro.baselines.tombstone import build_tombstone
from repro.cluster import ClusterSpec, DirectoryCluster
from repro.sim.driver import count_ghosts
from repro.sim.report import format_table


def churn_ops(rng, model, n_ops):
    """A reproducible balanced schedule with fresh keys (the paper's
    workload shape): inserts draw fresh uniform keys, deletes remove a
    uniform current member.  Deleted keys are never reused, so every
    delete leaves tombstones behind permanently in the tombstone scheme.
    """
    ops = []
    members = []
    for i in range(100):  # preload to ~100 entries
        k = rng.random()
        ops.append(("insert", k, i))
        model[k] = i
        members.append(k)
    for i in range(n_ops):
        roll = rng.random()
        if roll < 0.45 and members:
            k = members.pop(rng.randrange(len(members)))
            ops.append(("delete", k, None))
            del model[k]
        elif roll < 0.9 or not members:
            k = rng.random()
            ops.append(("insert", k, i))
            model[k] = i
            members.append(k)
        else:
            k = rng.choice(members)
            ops.append(("update", k, i))
            model[k] = i
    return ops


def apply_ops(directory, ops):
    for kind, key, value in ops:
        getattr(directory, kind)(*(k for k in (key, value) if k is not None))


def test_space_reclamation(benchmark, scale):
    n_ops = scale["generic_ops"]

    def experiment():
        rng = random.Random(50)
        ops = churn_ops(rng, {}, n_ops)
        deletes = sum(1 for kind, _, _ in ops if kind == "delete")

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=51))
        apply_ops(cluster.suite, ops)
        ours = count_ghosts(cluster)

        no_gc, _ = build_tombstone("3-2-2", seed=51)
        apply_ops(no_gc, ops)
        tomb_no_gc = sum(no_gc.live_overhead().values())

        with_gc, _ = build_tombstone("3-2-2", seed=51)
        gc_every = max(1, n_ops // 10)
        for i, (kind, key, value) in enumerate(ops):
            getattr(with_gc, kind)(
                *(k for k in (key, value) if k is not None)
            )
            if (i + 1) % gc_every == 0:
                with_gc.collect()
        tomb_gc = sum(with_gc.live_overhead().values())

        return {
            "deletes": deletes,
            "ours": ours,
            "tomb_no_gc": tomb_no_gc,
            "tomb_gc": tomb_gc,
            "gc_runs": with_gc.gc_runs,
        }

    r = run_once(benchmark, experiment)
    print(
        "\n"
        + format_table(
            ["scheme", "stale entries after run", "notes"],
            [
                [
                    "gap versions (this paper)",
                    str(r["ours"]),
                    "reclaimed inside deletes; bounded",
                ],
                [
                    "tombstones, no GC",
                    str(r["tomb_no_gc"]),
                    f"grows with the {r['deletes']} deletes",
                ],
                [
                    "tombstones + periodic GC",
                    str(r["tomb_gc"]),
                    f"{r['gc_runs']} GC runs, each needing ALL replicas up",
                ],
            ],
            title="Stale-entry population after identical churn (3-2-2)",
        )
    )
    benchmark.extra_info.update(
        {k: v for k, v in r.items() if isinstance(v, int)}
    )
    # The paper's qualitative claims:
    # tombstones without GC dwarf the self-cleaning algorithm...
    assert r["tomb_no_gc"] > r["ours"] * 3
    assert r["tomb_no_gc"] > r["deletes"]  # ~W tombstone copies per delete
    # ...and periodic GC bounds them again (at its availability price).
    assert r["tomb_gc"] < r["tomb_no_gc"] / 3
