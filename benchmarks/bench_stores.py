"""Microbenchmarks of the two representative stores.

Not a paper table — an engineering check that the B-tree representation
section 5 proposes scales as expected (logarithmic point operations) and
that the simulation default (the sorted-array store) is the right choice
at simulation sizes.
"""

import random

import pytest

from repro.core.keys import wrap
from repro.storage.btree import BTreeStore
from repro.storage.sorted_store import SortedStore

SIZES = [1_000, 10_000]


def loaded(store_cls, n, **kwargs):
    store = store_cls(**kwargs)
    for i in range(n):
        store.insert(wrap(i * 2), 1, i)
    return store


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "store_cls", [SortedStore, BTreeStore], ids=["sorted", "btree"]
)
def test_lookup_performance(benchmark, store_cls, size):
    store = loaded(store_cls, size)
    rng = random.Random(1)
    probes = [wrap(rng.randrange(0, size * 2)) for _ in range(512)]

    def work():
        for probe in probes:
            store.lookup(probe)

    benchmark(work)


@pytest.mark.parametrize(
    "store_cls", [SortedStore, BTreeStore], ids=["sorted", "btree"]
)
def test_insert_delete_churn(benchmark, store_cls):
    rng = random.Random(2)

    def work():
        store = loaded(store_cls, 1_000)
        for i in range(500):
            k = wrap(rng.randrange(0, 4_000) * 2 + 1)  # odd: always new
            store.insert(k, 2, i)
            store.remove_entry(k, 3)

    benchmark.pedantic(work, rounds=3, iterations=1)


@pytest.mark.parametrize(
    "store_cls", [SortedStore, BTreeStore], ids=["sorted", "btree"]
)
def test_neighbor_scan_performance(benchmark, store_cls):
    store = loaded(store_cls, 5_000)
    rng = random.Random(3)
    probes = [wrap(rng.randrange(1, 10_000)) for _ in range(512)]

    def work():
        for probe in probes:
            store.predecessor(probe)
            store.successor(probe)

    benchmark(work)
