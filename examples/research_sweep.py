#!/usr/bin/env python3
"""Using the simulation API for your own experiments.

A compact research workflow on top of the library:

1. sweep a design parameter (here: the write-quorum size of a 5-replica
   suite) with multi-seed replication and confidence intervals;
2. cross-check each point against the analytic model;
3. pick a configuration with the quorum planner;
4. render everything as paper-style tables.

Run:  python examples/research_sweep.py     (~30 seconds)
"""

from repro.core.config import SuiteConfig
from repro.sim.analytic import predict
from repro.sim.driver import SimulationSpec
from repro.sim.planner import cheapest_within, most_available
from repro.sim.replication import replicate
from repro.sim.report import format_table

CONFIGS = ["5-3-3", "5-2-4", "5-1-5"]
OPS = 1_500
RUNS = 3


def main() -> None:
    rows = []
    for spec_str in CONFIGS:
        spec = SimulationSpec(
            config=spec_str, directory_size=100, operations=OPS, seed=7
        )
        result = replicate(spec, n_runs=RUNS)
        summary = result.summary(confidence=0.95)
        model = predict(SuiteConfig.from_xyz(spec_str), 100)
        rows.append(
            [
                spec_str,
                str(summary["deletions_while_coalescing"]),
                f"{model.deletions_while_coalescing:.3f}",
                str(summary["insertions_while_coalescing"]),
                f"{model.insertions_while_coalescing:.3f}",
            ]
        )
    print(
        format_table(
            [
                "config",
                "ghost deletions (sim, 95% CI)",
                "(model)",
                "pred/succ inserts (sim, 95% CI)",
                "(model)",
            ],
            rows,
            title=(
                f"Write-quorum sweep on 5 replicas — {RUNS} seeds x {OPS} "
                "ops each, vs the analytic model"
            ),
        )
    )

    print("\nQuorum planner (p = 0.9 per node, 70% reads):")
    best = most_available(5, 0.9, read_fraction=0.7)
    cheap = cheapest_within(5, 0.9, read_fraction=0.7, availability_slack=0.02)
    print(
        f"  most available: {best.spec} "
        f"(op availability {best.operation_availability:.4f})"
    )
    print(
        f"  cheapest within 2%: {cheap.spec} "
        f"({cheap.accesses_per_operation:.2f} accesses/op)"
    )


if __name__ == "__main__":
    main()
