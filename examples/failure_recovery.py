#!/usr/bin/env python3
"""Anatomy of a crash: write-ahead logging, 2PC, and recovery.

Walks through the durability machinery under the directory suite:

1. a representative crashes, losing its volatile store;
2. the suite keeps serving from the surviving quorum;
3. the crashed node recovers by replaying its write-ahead log —
   including resolving an in-doubt prepared transaction against the
   coordinator's decision log;
4. the recovered replica is stale but can never win a vote, and catches
   up naturally as later writes land on it.

Run:  python examples/failure_recovery.py
"""

from repro.cluster import ClusterSpec
from repro import DirectoryCluster
from repro.core.keys import wrap


def main() -> None:
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=11))
    directory = cluster.suite

    for i in range(5):
        directory.insert(f"key-{i}", f"v{i}")
    rep_a = cluster.representative("A")
    print(f"A holds {rep_a.entry_count()} entries, WAL has {len(rep_a.wal)} records")

    # -- crash ---------------------------------------------------------------
    print("\ncrashing node-A (volatile store lost)...")
    cluster.crash("A")
    print(f"A's store now holds {rep_a.entry_count()} entries")

    # The suite doesn't care: B and C carry every quorum.
    directory.update("key-0", "v0-prime")
    directory.insert("key-new", "made-while-A-down")
    directory.delete("key-4")
    print("suite served update/insert/delete from {B, C} while A was down")

    # -- recovery ---------------------------------------------------------------
    print("\nrecovering node-A (replaying the write-ahead log)...")
    cluster.recover("A")
    print(f"A recovered {rep_a.entry_count()} entries from its log")

    # A recovered to its pre-crash state; it is *stale* about the writes
    # it missed, but quorum intersection means its answers can't win:
    reply = rep_a.store.lookup(wrap("key-0"))
    print(f"A's (stale) copy of key-0: {reply.value!r} at v{reply.version}")
    print(f"suite answer for key-0:   {directory.lookup('key-0')[1]!r}")
    assert directory.lookup("key-0") == (True, "v0-prime")
    assert directory.lookup("key-new") == (True, "made-while-A-down")
    assert directory.lookup("key-4") == (False, None)

    # A catches up on whatever later write quorums include it:
    directory.update("key-0", "v0-final")
    print(f"after one more update, suite answers {directory.lookup('key-0')[1]!r}")

    cluster.check_invariants()
    print("\nall replica structures verified")

    # -- statistics ---------------------------------------------------------------
    manager = directory.txn_manager
    print(
        f"\ntransactions: {manager.commits} committed, "
        f"{manager.aborts} aborted; decision log holds "
        f"{len(manager.decision_log.decisions)} outcomes"
    )


if __name__ == "__main__":
    main()
