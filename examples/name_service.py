#!/usr/bin/env python3
"""A replicated name service riding out failures.

The introduction motivates replication with "continued access to objects
despite failures of one or more storage nodes."  This example runs a
5-3-3 directory suite as a host→address name service under a random
crash/recover process, showing:

* operations keep succeeding while any 3 of 5 representatives are up;
* operations fail cleanly (no partial effects) when too few are up;
* crashed representatives recover their state from the write-ahead log
  and immediately rejoin quorums.

Run:  python examples/name_service.py
"""

import random

from repro.cluster import ClusterSpec
from repro import DirectoryCluster, QuorumUnavailableError
from repro.core.errors import TransactionError
from repro.net.failures import RandomFailures


def main() -> None:
    cluster = DirectoryCluster.create(ClusterSpec(config="5-3-3", seed=42))
    names = cluster.suite

    # Register an initial zone.
    hosts = {f"host-{i:02d}": f"10.1.0.{i}" for i in range(1, 31)}
    for host, addr in hosts.items():
        names.insert(host, addr)
    print(f"registered {len(hosts)} hosts on a 5-3-3 suite")

    # A memoryless failure process: each step every up node crashes with
    # p=2% and every down node recovers with p=25% (~92% availability).
    injector = RandomFailures(
        cluster.network,
        crash_prob=0.02,
        recover_prob=0.25,
        rng=random.Random(1),
    )

    rng = random.Random(2)
    ok = failed = 0
    for step in range(400):
        injector.step()
        host = f"host-{rng.randint(1, 30):02d}"
        try:
            if rng.random() < 0.7:
                present, addr = names.lookup(host)
                assert present and addr == hosts[host]
            else:
                new_addr = f"10.1.{rng.randint(1, 9)}.{rng.randint(1, 254)}"
                names.update(host, new_addr)
                hosts[host] = new_addr
            ok += 1
        except (QuorumUnavailableError, TransactionError):
            failed += 1  # not enough votes reachable right now

    up = sum(n.is_up for n in cluster.network.nodes())
    print(f"after 400 operations under churn: {ok} ok, {failed} unavailable")
    print(f"nodes currently up: {up}/5; recovering the rest...")
    for name in cluster.representatives:
        cluster.recover(name)

    # Every registration survived every crash (write-ahead logging):
    mismatches = sum(
        1
        for host, addr in hosts.items()
        if names.lookup(host) != (True, addr)
    )
    print(f"verification after full recovery: {mismatches} mismatches")
    assert mismatches == 0
    cluster.check_invariants()
    print("all replica structures verified — the zone is intact")


if __name__ == "__main__":
    main()
