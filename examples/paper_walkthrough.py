#!/usr/bin/env python3
"""The paper's worked example (Figures 1-5 and 10-11), narrated.

Reproduces, step by step and with replica-state printouts:

1. the 3-2-2 suite holding "a" and "c" everywhere (Figure 1);
2. inserting "b" at representatives A and B by splitting a gap
   (Figure 4) and how a {A, C} read quorum still answers correctly;
3. deleting "b" at representatives B and C by coalescing (Figure 5),
   leaving a ghost on A that can never win a vote;
4. the ghost scenario of Figures 10-11: deleting "a" when its real
   successor is missing from a quorum member.

Run:  python examples/paper_walkthrough.py
"""

from repro.cluster import ClusterSpec
from repro import DirectoryCluster
from repro.core.quorum import QuorumPolicy


class FixedQuorums(QuorumPolicy):
    """Pick exactly the representatives the paper's figures use."""

    def __init__(self, read, write=None):
        self.read, self.write = read, write

    def select(self, kind, available, config, rng):
        chosen = self.read if kind == "read" else self.write
        return list(chosen)


def show(cluster, label):
    print(f"\n{label}")
    for name, rep in cluster.representatives.items():
        entries = ", ".join(
            f"{e.key.payload}(v{e.version})" for e in rep.user_entries()
        )
        gaps = "/".join(str(g) for g in rep.store.iter_gap_versions())
        print(f"  representative {name}: [{entries or 'empty'}]  gaps v{gaps}")


def use_quorums(cluster, read, write=None):
    cluster.suite.quorum_policy = FixedQuorums(read, write)


def main() -> None:
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=0))
    directory = cluster.suite

    print("=== Figures 1-5: gap versions disambiguate lookups ===")
    # Figure 1: "a" and "c" on every representative.
    use_quorums(cluster, read=["A", "B"], write=["A", "B"])
    directory.insert("a", "value-a")
    use_quorums(cluster, read=["A", "B"], write=["A", "C"])
    directory.update("a", "value-a")
    use_quorums(cluster, read=["A", "B"], write=["A", "B"])
    directory.insert("c", "value-c")
    use_quorums(cluster, read=["A", "B"], write=["B", "C"])
    directory.update("c", "value-c")
    show(cluster, "Figure 1: every representative holds a, c")

    # Figure 4: insert "b" into A and B; the gap between a and c splits.
    use_quorums(cluster, read=["A", "B"], write=["A", "B"])
    directory.insert("b", "value-b")
    show(cluster, 'Figure 4: "b" inserted at A and B (C never saw it)')

    use_quorums(cluster, read=["A", "C"])
    present, value = directory.lookup("b")
    print(
        f'\nlookup("b") with read quorum {{A, C}}: A says "present v1", '
        f'C says "not present v0" -> the higher version wins: '
        f"present={present}"
    )

    # Figure 5: delete "b" using B and C.
    use_quorums(cluster, read=["B", "C"], write=["B", "C"])
    directory.delete("b")
    show(cluster, 'Figure 5: "b" deleted at B, C; gap coalesced to v2')

    use_quorums(cluster, read=["A", "C"])
    present, _ = directory.lookup("b")
    print(
        f'\nlookup("b") with read quorum {{A, C}} again: A still holds the '
        f"ghost at v1, but C's GAP now carries v2 -> present={present}"
    )
    print("(Without gap versions this lookup answers wrongly — that is")
    print(" the section 2 ambiguity, see repro.baselines.naive_entry_versions.)")

    print("\n=== Figures 10-11: ghosts and the real successor ===")
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=0))
    directory = cluster.suite
    use_quorums(cluster, read=["A", "B"], write=["A", "B"])
    directory.insert("a", "value-a")
    use_quorums(cluster, read=["A", "B"], write=["A", "C"])
    directory.update("a", "value-a")
    use_quorums(cluster, read=["A", "B"], write=["A", "B"])
    directory.insert("b", "value-b")
    use_quorums(cluster, read=["A", "B"], write=["B", "C"])
    directory.delete("b")
    use_quorums(cluster, read=["B", "C"], write=["A", "B"])
    directory.insert("bb", "value-bb")
    show(
        cluster,
        'Figure 10: ghost "b" on A; real successor "bb" missing from C',
    )

    use_quorums(cluster, read=["A", "C"], write=["A", "C"])
    directory.delete("a")
    show(
        cluster,
        'Figure 11: deleting "a" copied "bb" to C and the coalesce '
        'removed the ghost "b" from A',
    )
    stats = directory.delete_stats
    print(
        f"\ndelete bookkeeping: "
        f"{stats.insertions_while_coalescing.max:.0f} real-successor copy, "
        f"{stats.deletions_while_coalescing.max:.0f} ghost removed"
    )


if __name__ == "__main__":
    main()
