#!/usr/bin/env python3
"""Quickstart: a replicated directory in a dozen lines.

Creates a 3-representative directory suite with read and write quorums of
2 (the paper's running "3-2-2" example), performs the four directory
operations, and shows that the suite keeps working with one
representative crashed.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec
from repro import DirectoryCluster


def main() -> None:
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7))
    directory = cluster.suite

    # The four operations of the paper's abstract directory object.
    directory.insert("alice", "room 4101")
    directory.insert("bob", "room 4203")
    directory.update("bob", "room 4204")

    present, value = directory.lookup("alice")
    print(f"lookup(alice) -> present={present}, value={value!r}")

    directory.delete("alice")
    present, value = directory.lookup("alice")
    print(f"after delete   -> present={present}, value={value!r}")

    # Weighted voting keeps the directory available through a failure:
    # any 2 of the 3 representatives carry both a read and a write quorum.
    cluster.crash("C")
    directory.insert("carol", "room 4305")
    present, value = directory.lookup("carol")
    print(f"with C crashed -> insert ok; lookup(carol) = {value!r}")

    cluster.recover("C")
    print(f"bob is still   -> {directory.lookup('bob')[1]!r}")

    # Every operation ran as a distributed transaction over the simulated
    # cluster; the network kept score:
    stats = cluster.network.stats
    print(
        f"traffic: {stats.rpc_rounds} RPC rounds, "
        f"{stats.messages} messages"
    )


if __name__ == "__main__":
    main()
