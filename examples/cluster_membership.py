#!/usr/bin/env python3
"""A replicated membership set with a local hint cache.

Combines two of the paper's side notes in one scenario:

* section 1: "Trivial modifications of this algorithm may be used to
  implement sets" — a cluster-membership set (`ReplicatedSet`);
* section 2: "representatives with zero votes may be used as hints" —
  a zero-vote hint co-located with a monitoring client that polls
  membership constantly (`HintedDirectory` under the set).

The monitor's membership polls are answered by the local hint, validated
with version-only probes; joins and leaves go through ordinary quorum
writes.

Run:  python examples/cluster_membership.py
"""

from repro.cluster import ClusterSpec
from repro import DirectoryCluster, HintedDirectory, ReplicatedSet
from repro.core.config import SuiteConfig
from repro.net.network import site_latency

SITES = {
    "client": "monitor-site",
    "node-H": "monitor-site",
    "node-A": "dc-1",
    "node-B": "dc-2",
    "node-C": "dc-3",
}


class HintedSet(ReplicatedSet):
    """A replicated set whose membership tests go through a hint."""

    def __init__(self, suite, hinted):
        super().__init__(suite)
        self.hinted = hinted

    def contains(self, element):
        present, _value = self.hinted.lookup(element)
        return present


def main() -> None:
    config = SuiteConfig(
        votes={"A": 1, "B": 1, "C": 1, "H": 0},
        read_quorum=2,
        write_quorum=2,
    )
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=23, latency=site_latency(SITES, local=1.0, remote=30.0)))
    hinted = HintedDirectory(cluster.suite, hint="H")
    members = HintedSet(cluster.suite, hinted)

    # Nodes join the cluster.
    for node in ("worker-01", "worker-02", "worker-03", "worker-04"):
        members.add(node)
    print(f"members: {members.elements()}")

    # The monitor polls membership; repeated polls hit the local hint.
    for _ in range(3):
        for node in ("worker-01", "worker-02", "worker-99"):
            members.contains(node)
    stats = hinted.stats
    print(
        f"monitor polls: {stats.hits} hint hits, {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%})"
    )

    # A node leaves; the hint's stale copy loses the version vote and is
    # refreshed — no stale membership answer is ever returned.
    members.remove("worker-02")
    assert not members.contains("worker-02")
    assert members.contains("worker-01")
    print("after worker-02 left:", members.elements())

    # Even with a datacenter down, membership stays writable (2-of-3).
    cluster.crash("C")
    members.add("worker-05")
    print("with dc-3 down, worker-05 joined:", members.elements())
    cluster.recover("C")

    cluster.check_invariants()
    print("replica structures verified")


if __name__ == "__main__":
    main()
