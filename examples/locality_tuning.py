#!/usr/bin/env python3
"""Figure 16: tuning quorums to the workload's locality.

Two client populations (type A at site A, type B at site B) operate on
disjoint halves of a 4-2-3 directory suite whose representatives are
split across the two sites.  With the paper's locality policy, "all
inquiries can be done locally and the non-local write ... is evenly
distributed among the remote representatives"; with uniform random
quorums, half of everything crosses the slow inter-site link.

Run:  python examples/locality_tuning.py
"""

from repro.cluster import ClusterSpec
from repro import DirectoryCluster
from repro.core.config import SuiteConfig
from repro.core.quorum import LocalityQuorumPolicy, RandomQuorumPolicy
from repro.net.network import site_latency
from repro.sim.workload import LocalityWorkload

SITES = {
    "client": "site-A",
    "node-A1": "site-A",
    "node-A2": "site-A",
    "node-B1": "site-B",
    "node-B2": "site-B",
}


def build(policy):
    config = SuiteConfig(
        votes={"A1": 1, "A2": 1, "B1": 1, "B2": 1},
        read_quorum=2,
        write_quorum=3,
    )
    return DirectoryCluster.create(ClusterSpec(config=config, seed=3, quorum_policy=policy, latency=site_latency(SITES, local=1.0, remote=25.0)))


def drive(cluster, n_ops=600):
    suite = cluster.suite
    workload = LocalityWorkload(target_size=80, seed=4, type_a_fraction=1.0)
    for op in workload.initial_load(80):
        suite.insert(op.key, op.value)
    cluster.network.stats.reset()
    start = cluster.network.clock.now()
    for op in workload.operations(n_ops):
        handler = {
            "insert": suite.insert,
            "update": suite.update,
        }.get(op.kind)
        if handler is not None:
            handler(op.key, op.value)
        elif op.kind == "delete":
            suite.delete(op.key)
        else:
            suite.lookup(op.key)
    elapsed = cluster.network.clock.now() - start
    return elapsed / n_ops, cluster


def main() -> None:
    print("4-2-3 suite across two sites; local hop 1 tick, remote 25 ticks\n")

    ticks_locality, cluster = drive(
        build(LocalityQuorumPolicy(local=["A1", "A2"]))
    )
    b1 = cluster.representative("B1").entry_count()
    b2 = cluster.representative("B2").entry_count()
    print(f"locality policy (Figure 16): {ticks_locality:7.1f} ticks/op")
    print(f"  remote write balance: B1={b1} entries, B2={b2} entries")

    ticks_random, _ = drive(build(RandomQuorumPolicy()))
    print(f"uniform random quorums:      {ticks_random:7.1f} ticks/op")

    speedup = ticks_random / ticks_locality
    print(f"\nlocality tuning is {speedup:.1f}x faster on this workload")
    assert speedup > 1.4


if __name__ == "__main__":
    main()
