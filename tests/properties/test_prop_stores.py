"""Stateful property tests: both stores against a reference model.

The model is a plain sorted dict of key -> (version, value) plus a gap
map derived lazily; instead of modelling gaps independently we assert the
*differential* property — SortedStore and BTreeStore always agree exactly
— plus structural invariants and a handful of model facts (presence,
values, neighbor keys) that are easy to state independently.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.keys import HIGH, LOW, wrap
from repro.storage.btree import BTreeStore
from repro.storage.skiplist import SkipListStore
from repro.storage.sorted_store import SortedStore

key_payloads = st.integers(min_value=0, max_value=60)


class StorePair(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sorted_store = SortedStore()
        self.btree = BTreeStore(order=4)
        self.skiplist = SkipListStore(seed=1)
        self.model: dict[int, tuple[int, str]] = {}
        self.counter = 0

    def _next_version(self) -> int:
        self.counter += 1
        return self.counter

    @property
    def all_stores(self):
        return (self.sorted_store, self.btree, self.skiplist)

    @rule(k=key_payloads)
    def insert(self, k):
        version = self._next_version()
        results = {
            s.insert(wrap(k), version, f"v{version}") for s in self.all_stores
        }
        assert len(results) == 1
        self.model[k] = (version, f"v{version}")

    @rule(k=key_payloads)
    def lookup(self, k):
        replies = {s.lookup(wrap(k)) for s in self.all_stores}
        assert len(replies) == 1
        r1 = self.sorted_store.lookup(wrap(k))
        if k in self.model:
            assert r1.present
            assert (r1.version, r1.value) == self.model[k]
        else:
            assert not r1.present

    @rule(k=key_payloads)
    def neighbors(self, k):
        preds = {s.predecessor(wrap(k)) for s in self.all_stores}
        succs = {s.successor(wrap(k)) for s in self.all_stores}
        assert len(preds) == 1 and len(succs) == 1
        below = [m for m in self.model if m < k]
        expected_pred = wrap(max(below)) if below else LOW
        assert self.sorted_store.predecessor(wrap(k)).key == expected_pred

    @rule(a=key_payloads, b=key_payloads)
    def coalesce(self, a, b):
        lo, hi = (a, b) if a < b else (b, a)
        low_key = wrap(lo) if lo in self.model else LOW
        high_key = wrap(hi) if hi in self.model and hi != lo else HIGH
        if not low_key < high_key:
            return
        version = self._next_version()
        results = {
            s.coalesce(low_key, high_key, version) for s in self.all_stores
        }
        assert len(results) == 1
        for m in list(self.model):
            if low_key < wrap(m) < high_key:
                del self.model[m]

    @rule(k=key_payloads)
    def remove(self, k):
        if k not in self.model:
            return
        version = self._next_version()
        results = {
            s.remove_entry(wrap(k), version) for s in self.all_stores
        }
        assert len(results) == 1
        del self.model[k]

    @rule()
    def snapshot_roundtrip(self):
        snap = self.btree.snapshot()
        fresh = BTreeStore(order=4)
        fresh.restore(snap)
        assert fresh.snapshot() == snap

    @invariant()
    def stores_identical(self):
        reference = self.sorted_store.snapshot()
        assert self.btree.snapshot() == reference
        assert self.skiplist.snapshot() == reference

    @invariant()
    def model_membership_matches(self):
        store_keys = {e.key.payload for e in self.sorted_store.user_entries()}
        assert store_keys == set(self.model)

    @invariant()
    def structures_valid(self):
        for s in self.all_stores:
            s.check_invariants()


StorePairTest = StorePair.TestCase
StorePairTest.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
