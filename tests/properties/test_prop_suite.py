"""Stateful property test: the replicated directory vs a plain dict.

The central correctness claim of the paper — the replicated directory has
"semantics ... typical of directories that are stored on a single site" —
as a hypothesis state machine: arbitrary interleavings of insert, update,
delete, lookup, crash, and recover must behave exactly like a dict as long
as quorums remain available (the machine keeps at most one node down, so
a 3-2-2 suite never loses quorum).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError

key_payloads = st.integers(min_value=0, max_value=25)


class SuiteVsDict(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=77))
        self.suite = self.cluster.suite
        self.model: dict[int, int] = {}
        self.counter = 0
        self.down: str | None = None

    @rule(k=key_payloads)
    def insert(self, k):
        self.counter += 1
        if k in self.model:
            try:
                self.suite.insert(k, self.counter)
                raise AssertionError("expected KeyAlreadyPresentError")
            except KeyAlreadyPresentError:
                pass
        else:
            self.suite.insert(k, self.counter)
            self.model[k] = self.counter

    @rule(k=key_payloads)
    def update(self, k):
        self.counter += 1
        if k in self.model:
            self.suite.update(k, self.counter)
            self.model[k] = self.counter
        else:
            try:
                self.suite.update(k, self.counter)
                raise AssertionError("expected KeyNotPresentError")
            except KeyNotPresentError:
                pass

    @rule(k=key_payloads)
    def delete(self, k):
        if k in self.model:
            self.suite.delete(k)
            del self.model[k]
        else:
            try:
                self.suite.delete(k)
                raise AssertionError("expected KeyNotPresentError")
            except KeyNotPresentError:
                pass

    @rule(k=key_payloads)
    def lookup(self, k):
        present, value = self.suite.lookup(k)
        assert present == (k in self.model)
        if present:
            assert value == self.model[k]

    @precondition(lambda self: self.down is None)
    @rule(which=st.sampled_from(["A", "B", "C"]))
    def crash_one(self, which):
        self.cluster.crash(which)
        self.down = which

    @precondition(lambda self: self.down is not None)
    @rule()
    def recover(self):
        self.cluster.recover(self.down)
        self.down = None

    @invariant()
    def replica_structures_valid(self):
        for name, rep in self.cluster.representatives.items():
            if name != self.down:
                rep.store.check_invariants()

    def teardown(self):
        if self.down is not None:
            self.cluster.recover(self.down)
        assert self.suite.authoritative_state() == self.model


SuiteVsDictTest = SuiteVsDict.TestCase
SuiteVsDictTest.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class SuiteVsDictExtensions(SuiteVsDict):
    """The same machine with every optional feature switched on.

    Read repair, batched neighbor searches, and the B-tree store must all
    be behavior-preserving; running the dict-equivalence machine over the
    feature-complete configuration pins that.
    """

    def __init__(self):
        super().__init__()
        self.cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=78, store="btree", read_repair=True, neighbor_batch_size=3))
        self.suite = self.cluster.suite


SuiteVsDictExtensionsTest = SuiteVsDictExtensions.TestCase
SuiteVsDictExtensionsTest.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
