"""Property tests: RunningStat matches batch statistics on any input."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import RunningStat

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(floats, min_size=1, max_size=200)


def batch_mean(xs):
    return sum(xs) / len(xs)


def batch_pop_std(xs):
    m = batch_mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / len(xs))


class TestRunningStatProperties:
    @given(sample_lists)
    def test_matches_batch_mean_max_std(self, xs):
        s = RunningStat()
        for x in xs:
            s.add(x)
        assert s.n == len(xs)
        assert math.isclose(s.avg, batch_mean(xs), rel_tol=1e-9, abs_tol=1e-6)
        assert s.max == max(xs)
        assert math.isclose(
            s.std_dev, batch_pop_std(xs), rel_tol=1e-6, abs_tol=1e-5
        )

    @given(sample_lists, sample_lists)
    def test_merge_equals_pooled(self, xs, ys):
        a, b, pooled = RunningStat(), RunningStat(), RunningStat()
        for x in xs:
            a.add(x)
            pooled.add(x)
        for y in ys:
            b.add(y)
            pooled.add(y)
        a.merge(b)
        assert a.n == pooled.n
        assert math.isclose(a.avg, pooled.avg, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(
            a.std_dev, pooled.std_dev, rel_tol=1e-6, abs_tol=1e-5
        )
        assert a.max == pooled.max

    @given(sample_lists)
    def test_variance_nonnegative(self, xs):
        s = RunningStat()
        for x in xs:
            s.add(x)
        assert s.variance >= 0
