"""Property: retried writes under reply loss are applied exactly once.

A reply-lost RPC is the dangerous one — the effect happened and the
caller cannot tell.  For any seed and any loss rate the retrying
front-end must never double-apply a write (a retried committed Insert
must not raise ``KeyAlreadyPresentError`` or leave a stale value) and
never lose one (a write reported successful must be visible).  The
driver's model oracle checks both online and against the cluster's
authoritative state, so ``model_mismatches == 0`` is the whole property.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.driver import SimulationSpec, run_simulation
from repro.sim.workload import OpMix

WRITE_HEAVY = OpMix(insert=2, update=2, delete=1, lookup=1)


def _spec(seed: int, loss: float, reply_loss: float, retries: int):
    return SimulationSpec(
        config="3-2-2",
        directory_size=30,
        operations=120,
        seed=seed,
        mix=WRITE_HEAVY,
        loss=loss,
        reply_loss=reply_loss,
        retries=retries,
        verify_model=True,
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.10),
    reply_loss=st.floats(min_value=0.01, max_value=0.15),
)
def test_no_duplicate_apply_under_reply_loss_retries(seed, loss, reply_loss):
    result = run_simulation(_spec(seed, loss, reply_loss, retries=4))
    assert result.model_mismatches == 0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_exactly_once_holds_even_without_retries(seed):
    # Aborted attempts must leave no partial effects regardless of the
    # front-end: the oracle may count client-visible errors, but never a
    # duplicate apply or lost write.
    result = run_simulation(_spec(seed, loss=0.08, reply_loss=0.08, retries=0))
    assert result.model_mismatches == 0
