"""Property: a sharded directory matches the client model, always.

For any seed, shard count, shard map, and (lossy) network, routing ops
across N independent replica suites must be observationally identical to
a single correct directory: every lookup answers what the model says,
every write lands exactly once, and the merged authoritative state diffs
clean at the end.  The driver's model oracle checks all three, so
``model_mismatches == 0`` is the whole property; the audited variant
additionally proves every per-shard replica invariant held at commit
boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.driver import SimulationSpec, run_simulation
from repro.sim.workload import OpMix

CHURNY = OpMix(insert=2, update=2, delete=2, lookup=2)


def _spec(seed, shards, shard_map, workload, loss=0.0, retries=0, **extra):
    return SimulationSpec(
        config="3-2-2",
        directory_size=25,
        operations=120,
        seed=seed,
        mix=CHURNY,
        shards=shards,
        shard_map=shard_map,
        workload=workload,
        loss=loss,
        retries=retries,
        verify_model=True,
        **extra,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.sampled_from([1, 3, 8]),
    shard_map=st.sampled_from(["range", "hash"]),
    workload=st.sampled_from(["uniform", "skewed"]),
)
def test_sharded_matches_model_clean_network(seed, shards, shard_map, workload):
    result = run_simulation(_spec(seed, shards, shard_map, workload))
    assert result.model_mismatches == 0
    assert result.failed_operations == 0


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.sampled_from([1, 3, 8]),
    shard_map=st.sampled_from(["range", "hash"]),
    loss=st.floats(min_value=0.01, max_value=0.05),
)
def test_sharded_matches_model_under_loss(seed, shards, shard_map, loss):
    # 5% per-message loss with bounded retries: operations may *fail*
    # (availability), but no client-visible answer may ever be wrong and
    # no write may land twice — on any shard.
    result = run_simulation(
        _spec(seed, shards, shard_map, "uniform", loss=loss, retries=4)
    )
    assert result.model_mismatches == 0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shard_map=st.sampled_from(["range", "hash"]),
)
def test_sharded_audit_holds_at_commit_boundaries(seed, shard_map):
    result = run_simulation(
        _spec(
            seed,
            shards=3,
            shard_map=shard_map,
            workload="uniform",
            audit=True,
            audit_interval=40,
        )
    )
    assert result.model_mismatches == 0
    assert result.audit_report is not None
    assert result.audit_report.ok
