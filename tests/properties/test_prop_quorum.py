"""Property tests: quorum intersection for arbitrary vote assignments.

The algorithm's obligation (Q): any read quorum shares a voting
representative with any write quorum, and any two write quorums share
one.  Tested for arbitrary generated vote assignments and quorum sizes
that pass configuration validation, with quorums selected by the actual
policies.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import SuiteConfig
from repro.core.errors import ConfigurationError
from repro.core.quorum import RandomQuorumPolicy, StickyQuorumPolicy


@st.composite
def configs(draw):
    """Arbitrary valid SuiteConfig (weighted votes allowed)."""
    n = draw(st.integers(min_value=1, max_value=6))
    votes = {
        f"R{i}": draw(st.integers(min_value=0, max_value=3)) for i in range(n)
    }
    total = sum(votes.values())
    assume(total > 0)
    r = draw(st.integers(min_value=1, max_value=total))
    w = draw(st.integers(min_value=1, max_value=total))
    try:
        return SuiteConfig(votes=votes, read_quorum=r, write_quorum=w)
    except ConfigurationError:
        assume(False)


@st.composite
def configs_and_seed(draw):
    return draw(configs()), draw(st.integers(min_value=0, max_value=2**16))


class TestQuorumIntersection:
    @given(configs_and_seed())
    @settings(max_examples=200, deadline=None)
    def test_read_intersects_write(self, config_seed):
        config, seed = config_seed
        policy = RandomQuorumPolicy()
        rng = random.Random(seed)
        available = list(config.names)
        read = policy.select("read", available, config, rng)
        write = policy.select("write", available, config, rng)
        shared = set(read) & set(write)
        assert any(config.votes[n] > 0 for n in shared)

    @given(configs_and_seed())
    @settings(max_examples=200, deadline=None)
    def test_two_writes_intersect(self, config_seed):
        config, seed = config_seed
        policy = RandomQuorumPolicy()
        rng = random.Random(seed)
        available = list(config.names)
        w1 = policy.select("write", available, config, rng)
        w2 = policy.select("write", available, config, rng)
        shared = set(w1) & set(w2)
        assert any(config.votes[n] > 0 for n in shared)

    @given(configs_and_seed())
    @settings(max_examples=100, deadline=None)
    def test_quorums_carry_enough_votes(self, config_seed):
        config, seed = config_seed
        policy = StickyQuorumPolicy(switch_prob=0.5)
        rng = random.Random(seed)
        available = list(config.names)
        for _ in range(4):
            read = policy.select("read", available, config, rng)
            write = policy.select("write", available, config, rng)
            assert sum(config.votes[n] for n in read) >= config.read_quorum
            assert sum(config.votes[n] for n in write) >= config.write_quorum

    @given(configs_and_seed())
    @settings(max_examples=100, deadline=None)
    def test_intersection_even_with_subset_available(self, config_seed):
        # Whatever subset of representatives is reachable, quorums the
        # policy manages to form still intersect (they carry full votes).
        from repro.core.errors import QuorumUnavailableError

        config, seed = config_seed
        rng = random.Random(seed)
        names = list(config.names)
        rng.shuffle(names)
        available = names[: max(1, len(names) - 1)]
        policy = RandomQuorumPolicy()
        try:
            read = policy.select("read", available, config, rng)
            write = policy.select("write", available, config, rng)
        except QuorumUnavailableError:
            return  # legitimately unavailable; nothing to check
        shared = set(read) & set(write)
        assert any(config.votes[n] > 0 for n in shared)
