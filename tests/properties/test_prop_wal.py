"""Property tests: WAL replay reproduces the live store for any history."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import HIGH, LOW, wrap
from repro.storage.sorted_store import SortedStore
from repro.storage.wal import WriteAheadLog

# An abstract history: per transaction, a few operations plus an outcome.
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "coalesce"]),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=1,
    max_size=4,
)
txns = st.lists(
    st.tuples(ops, st.sampled_from(["commit", "abort", "crash"])),
    min_size=1,
    max_size=10,
)


def apply_history(history):
    """Execute the history on a live store while logging, with undo for
    aborted transactions (mirroring the representative's discipline)."""
    live = SortedStore()
    log = WriteAheadLog()
    version = 0
    for txn_index, (operations, outcome) in enumerate(history):
        txn_id = txn_index + 1
        undo = []
        for kind, a, b in operations:
            version += 1
            if kind == "insert":
                log.log_insert(txn_id, wrap(a), version, f"v{version}")
                result = live.insert(wrap(a), version, f"v{version}")
                undo.append(("insert", wrap(a), result))
            else:
                lo, hi = min(a, b), max(a, b)
                low_key = wrap(lo) if live.contains(wrap(lo)) else LOW
                high_key = wrap(hi) if live.contains(wrap(hi)) else HIGH
                if not low_key < high_key:
                    continue
                log.log_coalesce(txn_id, low_key, high_key, version)
                result = live.coalesce(low_key, high_key, version)
                undo.append(("coalesce", (low_key, high_key), result))
        if outcome == "commit":
            log.log_commit(txn_id)
        elif outcome == "abort":
            for kind, target, result in reversed(undo):
                if kind == "insert":
                    if result.replaced is not None:
                        live.insert(
                            result.replaced.key,
                            result.replaced.version,
                            result.replaced.value,
                        )
                    else:
                        live.remove_entry(target, result.split_gap_version)
                else:
                    low_key, high_key = target
                    live.restore_segment(low_key, high_key, result.removed)
            log.log_abort(txn_id)
        else:  # crash before commit: live loses the txn's effects too —
            # model by undoing (the node's volatile state is rebuilt from
            # the log, where the txn has no commit record).
            for kind, target, result in reversed(undo):
                if kind == "insert":
                    if result.replaced is not None:
                        live.insert(
                            result.replaced.key,
                            result.replaced.version,
                            result.replaced.value,
                        )
                    else:
                        live.remove_entry(target, result.split_gap_version)
                else:
                    low_key, high_key = target
                    live.restore_segment(low_key, high_key, result.removed)
    return live, log


class TestReplayProperty:
    @given(txns)
    @settings(max_examples=150, deadline=None)
    def test_replay_equals_live(self, history):
        live, log = apply_history(history)
        recovered = SortedStore()
        log.replay_into(recovered)
        assert recovered.snapshot() == live.snapshot()

    @given(txns)
    @settings(max_examples=60, deadline=None)
    def test_replay_idempotent(self, history):
        _live, log = apply_history(history)
        a, b = SortedStore(), SortedStore()
        log.replay_into(a)
        log.replay_into(b)
        assert a.snapshot() == b.snapshot()

    @given(txns)
    @settings(max_examples=60, deadline=None)
    def test_serialization_roundtrip_preserves_replay(self, history):
        _live, log = apply_history(history)
        a, b = SortedStore(), SortedStore()
        log.replay_into(a)
        WriteAheadLog.from_bytes(log.to_bytes()).replay_into(b)
        assert a.snapshot() == b.snapshot()
