"""Property tests for the lock table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import KeyRange, wrap
from repro.txn.locks import LockMode, LockTable, conflicts

modes = st.sampled_from([LockMode.REP_LOOKUP, LockMode.REP_MODIFY])
bounds = st.integers(min_value=0, max_value=30)
ranges = st.tuples(bounds, bounds).map(
    lambda ab: KeyRange(wrap(min(ab)), wrap(max(ab)))
)


class TestConflictRelation:
    @given(modes, ranges, modes, ranges)
    def test_symmetric(self, ma, ra, mb, rb):
        assert conflicts(ma, ra, mb, rb) == conflicts(mb, rb, ma, ra)

    @given(ranges, ranges)
    def test_lookup_never_conflicts_with_lookup(self, ra, rb):
        assert not conflicts(LockMode.REP_LOOKUP, ra, LockMode.REP_LOOKUP, rb)

    @given(modes, ranges, modes, ranges)
    def test_disjoint_never_conflicts(self, ma, ra, mb, rb):
        if not ra.intersects(rb):
            assert not conflicts(ma, ra, mb, rb)

    @given(ranges, ranges)
    def test_modify_conflicts_iff_intersecting(self, ra, rb):
        assert conflicts(LockMode.REP_MODIFY, ra, LockMode.REP_MODIFY, rb) == (
            ra.intersects(rb)
        )


# One random lock-request trace; the table must uphold its invariants.
request_traces = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5), modes, ranges),
    min_size=1,
    max_size=30,
)


class TestTableInvariants:
    @given(request_traces)
    @settings(max_examples=100, deadline=None)
    def test_held_locks_never_mutually_conflict(self, trace):
        table = LockTable()
        for txn_id, mode, key_range in trace:
            table.acquire(txn_id, mode, key_range)
        held = table.all_held()
        for i, a in enumerate(held):
            for b in held[i + 1 :]:
                if a.txn_id != b.txn_id:
                    assert not conflicts(a.mode, a.key_range, b.mode, b.key_range)

    @given(request_traces)
    @settings(max_examples=100, deadline=None)
    def test_release_everything_leaves_table_idle(self, trace):
        table = LockTable()
        for txn_id, mode, key_range in trace:
            table.acquire(txn_id, mode, key_range)
        for txn_id in {t for t, _, _ in trace}:
            table.release_all(txn_id)
        assert table.is_idle()

    @given(request_traces)
    @settings(max_examples=100, deadline=None)
    def test_waiters_conflict_with_someone(self, trace):
        table = LockTable()
        for txn_id, mode, key_range in trace:
            table.acquire(txn_id, mode, key_range)
        # Every queued request must have at least one blocker edge.
        waiting = {r.txn_id for r in table.waiting_requests()}
        edge_waiters = {w for w, _ in table.waits_for_edges()}
        assert waiting == edge_waiters

    @given(request_traces)
    @settings(max_examples=60, deadline=None)
    def test_fifo_release_eventually_grants_everyone(self, trace):
        table = LockTable()
        pending = {}
        for txn_id, mode, key_range in trace:
            result = table.acquire(txn_id, mode, key_range)
            pending.setdefault(txn_id, 0)
        # Release transactions one at a time (in id order); everything
        # queued must eventually be granted or dropped with its owner.
        for txn_id in sorted(pending):
            table.release_all(txn_id)
        assert table.is_idle()
