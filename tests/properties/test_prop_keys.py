"""Property-based tests for the key model and range algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import HIGH, LOW, BoundedKey, KeyRange, wrap

payloads = st.integers(min_value=-1000, max_value=1000)
keys = st.one_of(
    st.just(LOW),
    st.just(HIGH),
    payloads.map(wrap),
)


def ordered_pair(a: BoundedKey, b: BoundedKey) -> tuple[BoundedKey, BoundedKey]:
    return (a, b) if a <= b else (b, a)


ranges = st.tuples(keys, keys).map(lambda ab: KeyRange(*ordered_pair(*ab)))


class TestKeyOrderProperties:
    @given(payloads, payloads)
    def test_order_agrees_with_payload_order(self, a, b):
        assert (wrap(a) < wrap(b)) == (a < b)

    @given(keys)
    def test_sentinels_bound_everything(self, k):
        assert LOW <= k <= HIGH

    @given(keys, keys)
    def test_total_order_trichotomy(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(keys, keys, keys)
    def test_transitivity(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(payloads)
    def test_wrap_unwrap_roundtrip(self, p):
        from repro.core.keys import unwrap

        assert unwrap(wrap(p)) == p


class TestRangeProperties:
    @given(ranges, ranges)
    def test_intersects_symmetric(self, r1, r2):
        assert r1.intersects(r2) == r2.intersects(r1)

    @given(ranges)
    def test_range_intersects_itself(self, r):
        assert r.intersects(r)

    @given(ranges, ranges)
    def test_intersection_witness(self, r1, r2):
        """If two ranges intersect, a common key exists (and vice versa)."""
        lo = max(r1.low, r2.low)
        hi = min(r1.high, r2.high)
        assert r1.intersects(r2) == (lo <= hi)
        if r1.intersects(r2):
            assert r1.contains(lo) and r2.contains(lo)

    @given(ranges, ranges)
    def test_covers_implies_intersects(self, r1, r2):
        if r1.covers(r2):
            assert r1.intersects(r2)

    @given(ranges, ranges)
    def test_hull_covers_both(self, r1, r2):
        h = r1.union_hull(r2)
        assert h.covers(r1) and h.covers(r2)

    @given(ranges, keys)
    def test_contains_strictly_implies_contains(self, r, k):
        if r.contains_strictly(k):
            assert r.contains(k)

    @given(keys)
    def test_point_range_contains_only_its_key(self, k):
        r = KeyRange.point(k)
        assert r.contains(k)
        assert not r.contains_strictly(k)

    @given(ranges)
    def test_full_range_covers_all(self, r):
        assert KeyRange.full().covers(r)
