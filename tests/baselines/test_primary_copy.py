"""Tests for the primary/secondary copy baseline."""

import pytest

from repro.baselines.primary_copy import build_primary_copy
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    NodeDownError,
    QuorumUnavailableError,
)


class TestBasicOperation:
    def test_crud_with_propagation(self):
        d = build_primary_copy(2, seed=1)
        d.insert("a", 1)
        d.update("a", 2)
        d.propagate()
        assert all(d.lookup("a") == (True, 2) for _ in range(10))
        d.delete("a")
        d.propagate()
        assert all(d.lookup("a") == (False, None) for _ in range(10))

    def test_errors(self):
        d = build_primary_copy(2, seed=2)
        d.insert("a", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("a", 2)
        with pytest.raises(KeyNotPresentError):
            d.update("ghost", 1)


class TestStaleness:
    """The paper's indictment: "the result may not reflect the most
    current updates"."""

    def test_unpropagated_update_readable_as_stale(self):
        d = build_primary_copy(2, seed=3)
        d.insert("k", "v1")
        # No propagate(): secondaries have never heard of k.
        answers = {d.lookup("k") for _ in range(30)}
        assert (False, None) in answers  # stale read observed
        assert (True, "v1") in answers  # primary read observed

    def test_unpropagated_delete_resurrects_entry(self):
        d = build_primary_copy(2, seed=4)
        d.insert("k", "v1")
        d.propagate()
        d.delete("k")
        answers = {d.lookup("k") for _ in range(30)}
        assert (True, "v1") in answers  # the deleted entry still answers

    def test_read_primary_only_restores_semantics(self):
        d = build_primary_copy(2, seed=5, read_primary_only=True)
        d.insert("k", "v1")
        assert all(d.lookup("k") == (True, "v1") for _ in range(10))
        d.delete("k")
        assert all(d.lookup("k") == (False, None) for _ in range(10))

    def test_read_primary_only_hangs_off_one_node(self):
        d = build_primary_copy(2, seed=6, read_primary_only=True)
        d.insert("k", "v1")
        d.network.node("node-primary").crash()
        with pytest.raises(NodeDownError):
            d.lookup("k")


class TestPropagation:
    def test_propagate_is_incremental(self):
        d = build_primary_copy(1, seed=7)
        d.insert("a", 1)
        assert d.propagate() == 1
        assert d.propagate() == 0  # nothing new
        d.insert("b", 2)
        d.update("a", 3)
        assert d.propagate() == 2

    def test_down_secondary_catches_up_later(self):
        d = build_primary_copy(2, seed=8)
        d.insert("a", 1)
        d.network.node("node-S1").crash()
        d.insert("b", 2)
        d.propagate()  # S1 unreachable, S2 catches up
        d.network.node("node-S1").recover()
        d.propagate()  # now S1 replays the backlog in order
        s1 = d.network.node("node-S1").service("secondary:S1")
        assert s1.data == {"a": 1, "b": 2}

    def test_updates_applied_in_sequence_order(self):
        d = build_primary_copy(1, seed=9)
        for i in range(10):
            d.insert(i, i)
        d.propagate()
        s1 = d.network.node("node-S1").service("secondary:S1")
        assert s1.applied_seq == 10

    def test_primary_down_blocks_writes(self):
        d = build_primary_copy(2, seed=10)
        d.insert("a", 1)
        d.propagate()
        d.network.node("node-primary").crash()
        with pytest.raises(NodeDownError):
            d.insert("b", 2)
        # Reads still served by secondaries (stale-tolerant mode).
        assert d.lookup("a") == (True, 1)

    def test_all_replicas_down(self):
        d = build_primary_copy(1, seed=11)
        d.insert("a", 1)
        d.network.node("node-primary").crash()
        d.network.node("node-S1").crash()
        with pytest.raises(QuorumUnavailableError):
            d.lookup("a")
