"""Tests for the tombstone + garbage collection baseline (section 2)."""

import random

import pytest

from repro.baselines.tombstone import TOMBSTONE, build_tombstone
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    QuorumUnavailableError,
)


class TestSemantics:
    def test_crud_roundtrip(self):
        d, _ = build_tombstone("3-2-2", seed=1)
        d.insert("a", 1)
        d.update("a", 2)
        assert d.lookup("a") == (True, 2)
        d.delete("a")
        assert d.lookup("a") == (False, None)

    def test_errors(self):
        d, _ = build_tombstone("3-2-2", seed=2)
        d.insert("a", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("a", 2)
        d.delete("a")
        with pytest.raises(KeyNotPresentError):
            d.update("a", 3)
        with pytest.raises(KeyNotPresentError):
            d.delete("a")

    def test_reinsert_after_delete(self):
        # The tombstone's version history makes re-insertion safe — the
        # capability the naive scheme lacks.
        d, _ = build_tombstone("3-2-2", seed=3)
        d.insert("k", "old")
        d.delete("k")
        d.insert("k", "new")
        for _ in range(30):
            assert d.lookup("k") == (True, "new")

    def test_model_check_under_churn(self):
        d, _ = build_tombstone("3-2-2", seed=4)
        model = {}
        rng = random.Random(5)
        for i in range(400):
            k = rng.randint(0, 25)
            if k in model and rng.random() < 0.5:
                d.delete(k)
                del model[k]
            elif k not in model:
                d.insert(k, i)
                model[k] = i
            else:
                d.update(k, i)
                model[k] = i
        for k in range(26):
            present, value = d.lookup(k)
            assert present == (k in model)
            if present:
                assert value == model[k]


class TestSpaceOverhead:
    def test_tombstones_accumulate(self):
        # "the space occupied by 'deleted' entries could not easily be
        # reclaimed"
        d, reps = build_tombstone("3-2-2", seed=6)
        for i in range(40):
            d.insert(i, i)
            d.delete(i)
        overhead = d.live_overhead()
        assert sum(overhead.values()) > 40  # tombstones on ~W reps each

    def test_gc_reclaims_space(self):
        d, reps = build_tombstone("3-2-2", seed=7)
        for i in range(20):
            d.insert(i, i)
            d.delete(i)
        d.insert("live", "v")
        erased = d.collect()
        assert erased > 0
        assert sum(d.live_overhead().values()) == 0
        assert d.lookup("live") == (True, "v")
        for i in range(20):
            assert d.lookup(i) == (False, None)

    def test_gc_erases_stale_live_copies_too(self):
        # A replica that missed the delete holds a live copy; GC must
        # remove it with the tombstones or the key resurrects.
        d, reps = build_tombstone("3-2-2", seed=8)
        d.insert("k", "v")
        d.delete("k")
        # Force a stale live copy onto a replica lacking the tombstone.
        victim = next(
            name
            for name, rep in reps.items()
            if rep.data.get("k", (0, TOMBSTONE))[1] == TOMBSTONE
        )
        other = next(name for name in reps if name != victim)
        stale_rep = reps[other]
        stale_rep.put("k", 1, "stale")
        d.collect()
        for _ in range(30):
            assert d.lookup("k") == (False, None)
        assert all("k" not in rep.data for rep in reps.values())

    def test_gc_skips_reinserted_keys(self):
        d, reps = build_tombstone("3-2-2", seed=9)
        d.insert("k", "v1")
        d.delete("k")
        d.insert("k", "v2")  # newer than any tombstone
        d.collect()
        assert d.lookup("k") == (True, "v2")


class TestAvailabilityCost:
    def test_gc_requires_every_replica(self):
        # "that operation is complex and would itself be a concurrency
        # bottleneck" — and an availability bottleneck: all replicas up.
        d, _ = build_tombstone("3-2-2", seed=10)
        d.insert("a", 1)
        d.delete("a")
        d.network.node("node-C").crash()
        with pytest.raises(QuorumUnavailableError):
            d.collect()
        # Ordinary operations still run on the remaining quorum.
        d.insert("b", 2)
        assert d.lookup("b") == (True, 2)
        d.network.node("node-C").recover()
        assert d.collect() > 0

    def test_gc_counters(self):
        d, _ = build_tombstone("3-2-2", seed=11)
        d.insert("a", 1)
        d.delete("a")
        d.collect()
        assert d.gc_runs == 1
        assert d.gc_erased > 0
