"""Tests for Gifford's weighted voting on files."""

import pytest

from repro.baselines.file_voting import build_file_suite
from repro.core.errors import QuorumUnavailableError


class TestFileSuite:
    def test_read_your_writes(self):
        suite, _ = build_file_suite("3-2-2", seed=1)
        suite.write("v1")
        assert suite.read() == "v1"
        suite.write("v2")
        assert suite.read() == "v2"

    def test_versions_advance(self):
        suite, _ = build_file_suite("3-2-2", seed=2)
        v1 = suite.write("a")
        v2 = suite.write("b")
        assert v2 > v1
        assert suite.current_version() == v2

    def test_read_quorum_intersects_write_quorum(self):
        # Run many write/read cycles with random quorums: reads must
        # always see the latest contents.
        suite, _ = build_file_suite("5-3-3", seed=3)
        for i in range(100):
            suite.write(i)
            assert suite.read() == i

    def test_stale_replica_outvoted(self):
        suite, reps = build_file_suite("3-2-2", seed=4)
        suite.write("current")
        # Find a replica that missed the write (or rewind one).
        stale = next(iter(reps.values()))
        stale.version = 0
        stale.contents = "ancient"
        for _ in range(20):
            assert suite.read() == "current"

    def test_crash_recovery_restores_durable_state(self):
        suite, reps = build_file_suite("3-2-2", seed=5)
        suite.write("persisted")
        rep = reps["A"]
        rep.on_crash()
        assert rep.contents is None
        rep.on_recover()
        assert rep.contents in ("persisted", None)  # None iff A missed the write

    def test_unavailable_quorum_raises(self):
        suite, _ = build_file_suite("3-2-2", seed=6)
        suite.write("x")
        suite.network.node("node-A").crash()
        suite.network.node("node-B").crash()
        with pytest.raises(QuorumUnavailableError):
            suite.read()
        with pytest.raises(QuorumUnavailableError):
            suite.write("y")

    def test_single_crash_tolerated(self):
        suite, _ = build_file_suite("3-2-2", seed=7)
        suite.write("x")
        suite.network.node("node-C").crash()
        assert suite.read() == "x"
        suite.write("y")
        assert suite.read() == "y"
