"""Tests for the statically partitioned directory baseline."""

import random

import pytest

from repro.baselines.static_partition import build_static_partitioned
from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError


class TestPartitionFunction:
    def test_keys_map_to_expected_partitions(self):
        d = build_static_partitioned("3-2-2", n_partitions=4, seed=1)
        assert d.partition_of(0.0) == 0
        assert d.partition_of(0.26) == 1
        assert d.partition_of(0.99) == 3

    def test_out_of_range_key_rejected(self):
        d = build_static_partitioned("3-2-2", n_partitions=4, seed=2)
        with pytest.raises(ValueError):
            d.partition_of(1.5)

    def test_at_least_one_partition(self):
        with pytest.raises(ValueError):
            build_static_partitioned("3-2-2", n_partitions=0)


class TestSemantics:
    def test_crud_roundtrip(self):
        d = build_static_partitioned("3-2-2", n_partitions=8, seed=3)
        d.insert(0.1, "x")
        d.insert(0.9, "y")
        d.update(0.1, "x2")
        assert d.lookup(0.1) == (True, "x2")
        d.delete(0.9)
        assert d.lookup(0.9) == (False, None)
        assert d.size() == 1

    def test_errors(self):
        d = build_static_partitioned("3-2-2", n_partitions=8, seed=4)
        d.insert(0.5, "v")
        with pytest.raises(KeyAlreadyPresentError):
            d.insert(0.5, "w")
        with pytest.raises(KeyNotPresentError):
            d.delete(0.6)

    def test_deletes_sound_despite_partial_replication(self):
        # Partition-level version numbers make absence authoritative:
        # the delete's rewritten partition outranks every stale copy.
        d = build_static_partitioned("3-2-2", n_partitions=2, seed=5)
        rng = random.Random(6)
        model = {}
        for i in range(300):
            k = round(rng.random(), 6)
            if model and rng.random() < 0.4:
                victim = rng.choice(list(model))
                d.delete(victim)
                del model[victim]
            elif k not in model:
                d.insert(k, i)
                model[k] = i
        for k, v in model.items():
            assert d.lookup(k) == (True, v)
        assert d.size() == len(model)


class TestCostStructure:
    def test_payload_tracks_partition_occupancy(self):
        d = build_static_partitioned("3-2-2", n_partitions=2, seed=7)
        net = d.network
        # Fill partition 0 heavily, partition 1 lightly.
        for i in range(40):
            d.insert(0.001 + i * 0.01, i)  # all in [0, 0.5)
        d.insert(0.9, "lone")
        net.stats.reset()
        d.update(0.9, "lone2")  # rewrites the 1-entry partition
        light = net.stats.payload_items
        net.stats.reset()
        d.update(0.001, "heavy")  # rewrites the 40-entry partition
        heavy = net.stats.payload_items
        assert heavy > light * 10

    def test_more_partitions_smaller_payloads(self):
        coarse = build_static_partitioned("3-2-2", n_partitions=1, seed=8)
        fine = build_static_partitioned("3-2-2", n_partitions=64, seed=8)
        for d in (coarse, fine):
            for i in range(32):
                d.insert((i + 0.5) / 33, i)
            d.network.stats.reset()
            d.update(0.5 / 33, "new")
        assert fine.network.stats.payload_items < coarse.network.stats.payload_items
