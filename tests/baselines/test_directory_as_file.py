"""Tests for the directory-as-one-voted-file baseline."""

import pytest

from repro.cluster import ClusterSpec
from repro.baselines.directory_as_file import build_directory_as_file
from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError


class TestSemantics:
    def test_crud_roundtrip(self):
        d = build_directory_as_file("3-2-2", seed=1)
        d.insert("a", 1)
        d.insert("b", 2)
        assert d.lookup("a") == (True, 1)
        d.update("a", 3)
        assert d.lookup("a") == (True, 3)
        d.delete("b")
        assert d.lookup("b") == (False, None)
        assert d.size() == 1

    def test_insert_existing_rejected(self):
        d = build_directory_as_file("3-2-2", seed=2)
        d.insert("a", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("a", 2)

    def test_update_and_delete_missing_rejected(self):
        d = build_directory_as_file("3-2-2", seed=3)
        with pytest.raises(KeyNotPresentError):
            d.update("ghost", 1)
        with pytest.raises(KeyNotPresentError):
            d.delete("ghost")

    def test_deletes_need_no_ghost_machinery(self):
        # This is why the baseline is correct despite one version number:
        # deletes rewrite the whole object, so absence is authoritative.
        d = build_directory_as_file("3-2-2", seed=4)
        for i in range(20):
            d.insert(i, i)
        for i in range(0, 20, 2):
            d.delete(i)
        for i in range(20):
            assert d.lookup(i) == ((i % 2 == 1), i if i % 2 else None)


class TestCost:
    def test_payload_grows_with_directory_size(self):
        d = build_directory_as_file("3-2-2", seed=5)
        net = d.file_suite.network
        for i in range(50):
            d.insert(i, i)
        net.stats.reset()
        d.insert("one-more", 0)
        # One insert shipped the whole ~51-entry directory to W replicas.
        assert net.stats.payload_items >= 51 * 2

    def test_fine_grained_suite_payload_is_constant(self):
        # Contrast: the paper's algorithm ships only the touched entry.
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6))
        for i in range(50):
            cluster.suite.insert(i, i)
        cluster.network.stats.reset()
        cluster.suite.insert(999, 0)
        assert cluster.network.stats.payload_items < 20
