"""Tests for the section 2 strawman: per-entry versions, no gap versions.

The first class replays the paper's Figures 1–3 scenario and demonstrates
the exact failure the paper describes; the rest cover the three resolution
modes and their costs.
"""

import random

import pytest

from repro.cluster import ClusterSpec
from repro.baselines.naive_entry_versions import build_naive
from repro.core.errors import (
    AmbiguousLookupError,
    KeyAlreadyPresentError,
    KeyNotPresentError,
    QuorumUnavailableError,
)


def figures_1_to_3_state(reps):
    """All replicas hold a, c; b inserted at {A,B} then deleted at {B,C}."""
    for rep in reps.values():
        rep.put("a", 1, "A-val")
        rep.put("c", 1, "C-val")
    reps["A"].put("b", 1, "B-val")
    reps["B"].put("b", 1, "B-val")
    reps["B"].remove("b")
    reps["C"].remove("b")


class TestPaperScenario:
    def test_version_mode_returns_deleted_entry(self):
        d, reps = build_naive("3-2-2", seed=1, resolution="version")
        figures_1_to_3_state(reps)
        d.rng = random.Random(0)
        wrong = sum(d.lookup("b") == (True, "B-val") for _ in range(100))
        # Read quorums containing A ({A,B} or {A,C}) trust the ghost:
        # roughly 2/3 of uniformly chosen quorums answer wrongly.
        assert wrong > 30

    def test_error_mode_raises_on_mixed_replies(self):
        d, reps = build_naive("3-2-2", seed=2, resolution="error")
        figures_1_to_3_state(reps)
        saw_ambiguous = 0
        for _ in range(50):
            try:
                present, _ = d.lookup("b")
                assert present is False  # quorum {B, C}: both absent
            except AmbiguousLookupError:
                saw_ambiguous += 1
        assert saw_ambiguous > 0
        assert d.ambiguous_lookups >= saw_ambiguous

    def test_consult_mode_always_correct(self):
        d, reps = build_naive("3-2-2", seed=3, resolution="consult")
        figures_1_to_3_state(reps)
        for _ in range(100):
            assert d.lookup("b") == (False, None)
        # Deciding required going beyond the read quorum.
        assert d.extra_consultations > 0

    def test_consult_mode_correct_for_present_partial_entry(self):
        # Entry on a write quorum {A, B} but absent from C: consult mode
        # must answer present.
        d, reps = build_naive("3-2-2", seed=4, resolution="consult")
        for rep in reps.values():
            rep.put("a", 1, "A-val")
        reps["A"].put("x", 1, "X")
        reps["B"].put("x", 1, "X")
        for _ in range(100):
            assert d.lookup("x") == (True, "X")

    def test_consult_mode_reduced_availability(self):
        # "this approach ... results in reduced availability": with one
        # node down, 2 replies may satisfy neither counting threshold.
        d, reps = build_naive("3-2-2", seed=5, resolution="consult")
        figures_1_to_3_state(reps)
        d.network.node("node-B").crash()
        # Remaining: A (has ghost b), C (does not). 1 present, 1 absent,
        # threshold = x - W = 1: neither side exceeds it. Unresolvable.
        with pytest.raises(QuorumUnavailableError):
            for _ in range(50):
                d.lookup("b")

    def test_paper_algorithm_same_scenario_no_extra_reps(self):
        # Control: the gap-version algorithm answers from any R=2 quorum.
        from repro.cluster import DirectoryCluster
        from tests.integration.test_paper_figures import (
            FixedQuorumPolicy,
        )

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6))
        suite = cluster.suite
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["A", "B"])
        suite.insert("a", "A-val")
        suite.insert("b", "B-val")
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["B", "C"])
        suite.delete("b")
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            suite.quorum_policy = FixedQuorumPolicy(read=quorum)
            assert suite.lookup("b") == (False, None)


class TestNaiveModesGeneral:
    def test_unambiguous_operations_work(self):
        d, _ = build_naive("3-2-2", seed=7, resolution="error")
        # Full write quorum = 2 of 3; insert then read can still be
        # ambiguous if the read quorum straddles the write quorum, so use
        # consult mode for the general check.
        d2, _ = build_naive("3-2-2", seed=8, resolution="consult")
        d2.insert("k", 1)
        assert d2.lookup("k") == (True, 1)
        d2.update("k", 2)
        assert d2.lookup("k") == (True, 2)
        d2.delete("k")
        assert d2.lookup("k") == (False, None)

    def test_insert_update_delete_errors(self):
        d, _ = build_naive("3-2-2", seed=9, resolution="consult")
        d.insert("k", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("k", 2)
        with pytest.raises(KeyNotPresentError):
            d.update("ghost", 1)
        with pytest.raises(KeyNotPresentError):
            d.delete("ghost")

    def test_bad_resolution_mode_rejected(self):
        with pytest.raises(ValueError):
            build_naive("3-2-2", resolution="vibes")

    def test_random_workload_consult_mode_matches_model(self):
        d, _ = build_naive("3-2-2", seed=10, resolution="consult")
        model = {}
        rng = random.Random(11)
        for i in range(300):
            k = rng.randint(0, 15)
            if k in model and rng.random() < 0.5:
                d.delete(k)
                del model[k]
            elif k not in model:
                d.insert(k, i)
                model[k] = i
            else:
                d.update(k, i)
                model[k] = i
        for k in range(16):
            present, value = d.lookup(k)
            assert present == (k in model)
            if present:
                assert value == model[k]
