"""Tests for the unanimous update baseline."""

import pytest

from repro.cluster import ClusterSpec
from repro.baselines.unanimous import build_unanimous
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    QuorumUnavailableError,
)


class TestSemantics:
    def test_crud_roundtrip(self):
        d = build_unanimous(3, seed=1)
        d.insert("a", 1)
        d.update("a", 2)
        assert d.lookup("a") == (True, 2)
        d.delete("a")
        assert d.lookup("a") == (False, None)

    def test_duplicate_and_missing_errors(self):
        d = build_unanimous(3, seed=2)
        d.insert("a", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("a", 2)
        with pytest.raises(KeyNotPresentError):
            d.delete("ghost")

    def test_reads_from_any_single_replica(self):
        d = build_unanimous(3, seed=3)
        d.insert("a", 1)
        d.network.node("node-A").crash()
        d.network.node("node-B").crash()
        # One replica is enough for reads.
        assert d.lookup("a") == (True, 1)

    def test_exactly_n_writes_per_delete(self):
        # The comparison point for the paper's section 4 statistics.
        d = build_unanimous(3, seed=4)
        d.insert("a", 1)
        writes_before = d.writes_performed
        d.delete("a")
        assert d.writes_performed - writes_before == 3


class TestAvailability:
    def test_single_crash_blocks_all_updates(self):
        # "the availability for updates ... is poor": ONE crash stops
        # every modification.
        d = build_unanimous(3, seed=5)
        d.insert("a", 1)
        d.network.node("node-C").crash()
        with pytest.raises(QuorumUnavailableError):
            d.insert("b", 2)
        with pytest.raises(QuorumUnavailableError):
            d.update("a", 9)
        with pytest.raises(QuorumUnavailableError):
            d.delete("a")
        # Reads still fine.
        assert d.lookup("a") == (True, 1)

    def test_voting_suite_survives_what_unanimous_cannot(self):
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6))
        cluster.suite.insert("a", 1)
        cluster.crash("C")
        cluster.suite.update("a", 2)  # weighted voting shrugs
        assert cluster.suite.lookup("a") == (True, 2)


class TestRecovery:
    def test_replica_recovers_from_durable_ops(self):
        d = build_unanimous(2, seed=7)
        d.insert("a", 1)
        d.insert("b", 2)
        d.delete("a")
        node = d.network.node("node-A")
        node.crash()
        node.recover()
        svc = node.service("plain:A")
        assert svc.data == {"b": 2}
