"""Integration tests pinning the suite's user-visible semantics."""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    SentinelKeyError,
)
from repro.core.keys import HIGH, LOW, wrap
from repro.core.versions import PAPER_48BIT, VersionOverflowError, VersionSpace


class TestDirectorySemantics:
    def test_insert_existing_rejected(self, cluster322):
        cluster322.suite.insert("k", 1)
        with pytest.raises(KeyAlreadyPresentError):
            cluster322.suite.insert("k", 2)
        # The failed insert changed nothing.
        assert cluster322.suite.lookup("k") == (True, 1)

    def test_update_missing_rejected(self, cluster322):
        with pytest.raises(KeyNotPresentError):
            cluster322.suite.update("ghost", 1)

    def test_delete_missing_rejected(self, cluster322):
        with pytest.raises(KeyNotPresentError):
            cluster322.suite.delete("ghost")

    def test_sentinel_keys_rejected(self, cluster322):
        for sentinel in (LOW, HIGH):
            with pytest.raises(SentinelKeyError):
                cluster322.suite.insert(sentinel, 1)
            with pytest.raises(SentinelKeyError):
                cluster322.suite.lookup(sentinel)
            with pytest.raises(SentinelKeyError):
                cluster322.suite.delete(sentinel)

    def test_reinsert_after_delete(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", "first")
        suite.delete("k")
        suite.insert("k", "second")
        assert suite.lookup("k") == (True, "second")

    def test_many_reinsert_cycles_raise_versions(self, cluster322):
        suite = cluster322.suite
        for i in range(10):
            suite.insert("k", i)
            suite.delete("k")
        suite.insert("k", "final")
        assert suite.lookup("k") == (True, "final")
        # The key's version must exceed 10 (each cycle bumps it twice).
        txn = suite.txn_manager.begin()
        reply = suite._suite_lookup(txn, wrap("k"))
        suite.txn_manager.abort(txn)
        assert reply.version >= 20

    def test_none_is_a_legal_value(self, cluster322):
        cluster322.suite.insert("k", None)
        assert cluster322.suite.lookup("k") == (True, None)

    def test_mixed_comparable_keys(self, cluster322):
        suite = cluster322.suite
        for k in (3, 1, 2):
            suite.insert(k, k * 10)
        suite.delete(2)
        assert suite.lookup(1) == (True, 10)
        assert suite.lookup(2) == (False, None)
        assert suite.lookup(3) == (True, 30)

    def test_op_counts_track(self, cluster322):
        suite = cluster322.suite
        suite.insert("a", 1)
        suite.lookup("a")
        suite.update("a", 2)
        suite.delete("a")
        counts = suite.op_counts
        assert (counts.inserts, counts.lookups, counts.updates, counts.deletes) == (
            1, 1, 1, 1,
        )

    def test_failed_ops_counted(self, cluster322):
        with pytest.raises(KeyNotPresentError):
            cluster322.suite.delete("nope")
        assert cluster322.suite.op_counts.failed == 1


class TestVersionSpaceIntegration:
    def test_version_overflow_surfaces(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=2, version_space=VersionSpace(bits=3)))
        suite = cluster.suite
        suite.insert("k", 0)
        with pytest.raises(VersionOverflowError):
            for i in range(10):  # 3-bit space: versions cap at 7
                suite.update("k", i)

    def test_48bit_space_practically_unbounded(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3, version_space=PAPER_48BIT))
        suite = cluster.suite
        suite.insert("k", 0)
        for i in range(50):
            suite.update("k", i)
        assert suite.lookup("k") == (True, 49)


class TestTrafficAccounting:
    def test_lookup_costs_read_quorum_rounds(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        cluster322.network.stats.reset()
        suite.lookup("k")
        by_method = cluster322.network.stats.by_method
        lookup_calls = sum(
            count for method, count in by_method.items() if "rep_lookup" in method
        )
        assert lookup_calls == 2  # R = 2

    def test_insert_costs_read_plus_write_quorum(self, cluster322):
        suite = cluster322.suite
        cluster322.network.stats.reset()
        suite.insert("k", 1)
        by_method = cluster322.network.stats.by_method
        inserts = sum(
            count for m, count in by_method.items() if "rep_insert" in m
        )
        assert inserts == 2  # W = 2

    def test_clock_advances_with_traffic(self, cluster322):
        before = cluster322.network.clock.now()
        cluster322.suite.insert("k", 1)
        assert cluster322.network.clock.now() > before
