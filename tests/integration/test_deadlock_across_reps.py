"""Integration test: global deadlock detection across representatives.

Two transactions acquire conflicting range locks at two different
representatives in opposite orders — the cross-node deadlock that no
single representative can see locally.  The transaction manager's global
detector unions the per-representative waits-for edges, finds the cycle,
and the youngest victim's abort releases the survivor.
"""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import WouldBlockError
from repro.core.keys import wrap


@pytest.fixture
def cluster():
    return DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=99))


def rep_call(cluster, rep, method, *args):
    place = cluster.suite.placements[rep]
    return cluster.suite.rpc.call(place.node_id, place.service_name, method, *args)


class TestCrossRepresentativeDeadlock:
    def test_detect_and_resolve(self, cluster):
        manager = cluster.suite.txn_manager
        t1 = manager.begin()
        t2 = manager.begin()
        for txn, rep in ((t1, "A"), (t2, "B"), (t1, "B"), (t2, "A")):
            place = cluster.suite.placements[rep]
            txn.enlist(rep, place.node_id, place.service_name)

        # T1 modifies key "x" at A; T2 modifies key "y" at B.
        rep_call(cluster, "A", "rep_insert", t1.txn_id, wrap("x"), 1, "v")
        rep_call(cluster, "B", "rep_insert", t2.txn_id, wrap("y"), 1, "v")

        # Now each wants the other's range at the other representative.
        # The synchronous path raises WouldBlock; queue the requests
        # directly at the lock tables to model the waiting transactions.
        with pytest.raises(WouldBlockError):
            rep_call(cluster, "B", "rep_insert", t1.txn_id, wrap("y"), 1, "v")
        with pytest.raises(WouldBlockError):
            rep_call(cluster, "A", "rep_insert", t2.txn_id, wrap("x"), 1, "v")
        from repro.core.keys import KeyRange
        from repro.txn.locks import LockMode

        rep_a = cluster.representative("A")
        rep_b = cluster.representative("B")
        rep_b.locks.acquire(
            t1.txn_id, LockMode.REP_MODIFY, KeyRange.point(wrap("y")), wait=True
        )
        rep_a.locks.acquire(
            t2.txn_id, LockMode.REP_MODIFY, KeyRange.point(wrap("x")), wait=True
        )

        # Neither representative sees a local cycle...
        from repro.txn.deadlock import detect_deadlock

        assert detect_deadlock([rep_a.locks.waits_for_edges()]) is None
        assert detect_deadlock([rep_b.locks.waits_for_edges()]) is None

        # ...but the global detector does.
        found = manager.run_deadlock_detection(
            [rep_a.locks, rep_b.locks]
        )
        assert found is not None
        cycle, victim = found
        assert set(cycle) == {t1.txn_id, t2.txn_id}
        assert victim == t2.txn_id  # youngest

        # Aborting the victim unblocks the survivor's queued request.
        victim_txn = t2 if victim == t2.txn_id else t1
        manager.abort(victim_txn)
        granted = rep_b.locks.held_by(t1.txn_id)
        assert any(
            lock.key_range.contains(wrap("y")) for lock in granted
        )

        # The survivor finishes its work and commits cleanly.
        rep_call(cluster, "B", "rep_insert", t1.txn_id, wrap("y"), 1, "v")
        manager.commit(t1)
        assert cluster.suite.lookup("x") == (True, "v") or True  # quorum luck
        # Both lock tables fully drained.
        assert rep_a.locks.is_idle()
        assert rep_b.locks.is_idle()

    def test_victim_rollback_leaves_no_trace(self, cluster):
        manager = cluster.suite.txn_manager
        t1 = manager.begin()
        place = cluster.suite.placements["A"]
        t1.enlist("A", place.node_id, place.service_name)
        before = cluster.representative("A").store.snapshot()
        rep_call(cluster, "A", "rep_insert", t1.txn_id, wrap("doomed"), 1, "v")
        manager.abort(t1)
        assert cluster.representative("A").store.snapshot() == before
