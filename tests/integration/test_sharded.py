"""End-to-end sharded directory behavior.

The load-bearing guarantee: sharding is *transparent*.  A single-shard
sharded directory is bit-identical to the unsharded suite (accounting
honesty), and a multi-shard one preserves every invariant and every
client-visible outcome (correctness), including under message loss.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.shard import ShardedDirectory
from repro.sim import SimulationSpec, run_simulation
from repro.sim.workload import UniformWorkload


def _churn_ops(n, seed):
    """A deterministic mixed op stream over the optimistic workload model."""
    workload = UniformWorkload(target_size=30, seed=seed)
    ops = [("insert", op.key, op.value) for op in workload.initial_load(30)]
    for op in workload.operations(n):
        if op.kind in ("insert", "update"):
            ops.append((op.kind, op.key, op.value))
        else:
            ops.append((op.kind, op.key))
    return ops


def _run(front, ops):
    results = []
    for op in ops:
        results.append(getattr(front, op[0])(*op[1:]))
    return results


class TestSingleShardBitIdentity:
    def test_direct_ops_identical(self):
        ops = _churn_ops(200, seed=17)

        plain = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=99))
        r_plain = _run(plain.suite, ops)
        plain_obs = (
            plain.network.stats.messages,
            plain.network.stats.rpc_rounds,
            plain.network.stats.payload_items,
            plain.network.clock.now(),
            plain.suite.authoritative_state(),
            plain.suite.delete_stats.as_table(),
        )

        sharded = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=99), shards=1, shard_map="range")
        r_sharded = _run(sharded, ops)
        sharded_obs = (
            sharded.network.stats.messages,
            sharded.network.stats.rpc_rounds,
            sharded.network.stats.payload_items,
            sharded.network.clock.now(),
            sharded.authoritative_state(),
            sharded.delete_stats.as_table(),
        )

        assert r_plain == r_sharded
        assert plain_obs == sharded_obs

    def test_driver_runs_identical(self):
        base = dict(
            config="3-2-2",
            directory_size=40,
            operations=400,
            seed=7,
            verify_model=True,
        )
        plain = run_simulation(SimulationSpec(**base))
        sharded = run_simulation(SimulationSpec(**base, shards=1))

        assert plain.model_mismatches == sharded.model_mismatches == 0
        assert plain.traffic == sharded.traffic
        assert plain.sim_ticks == sharded.sim_ticks
        assert plain.final_size == sharded.final_size
        assert plain.op_counts == sharded.op_counts
        assert (
            plain.delete_stats.as_table() == sharded.delete_stats.as_table()
        )
        # Same replica contents, modulo the s0/ shard prefix.
        assert plain.rep_entry_counts == {
            name.split("/", 1)[1]: count
            for name, count in sharded.rep_entry_counts.items()
        }


class TestMultiShard:
    @pytest.mark.parametrize("shard_map", ["range", "hash"])
    def test_audited_run_clean(self, shard_map):
        result = run_simulation(
            SimulationSpec(
                directory_size=60,
                operations=600,
                seed=23,
                shards=4,
                shard_map=shard_map,
                verify_model=True,
                audit=True,
                audit_interval=200,
            )
        )
        assert result.model_mismatches == 0
        assert result.failed_operations == 0
        assert result.audit_report is not None
        assert result.audit_report.ok
        assert result.audit_report.runs == 4  # 3 interval + 1 final
        routed = result.metrics["shard.routed"]
        assert sum(routed.values()) > 0
        if shard_map == "hash":
            # Hash routing must touch every shard on a 600-op run.
            assert all(v > 0 for v in routed.values())

    def test_skewed_workload_imbalances_range_not_hash(self):
        def routed_counts(shard_map):
            result = run_simulation(
                SimulationSpec(
                    directory_size=80,
                    operations=400,
                    seed=31,
                    shards=8,
                    shard_map=shard_map,
                    workload="skewed",
                )
            )
            return result.metrics["shard.routed"]

        range_routed = routed_counts("range")
        hash_routed = routed_counts("hash")
        assert max(range_routed.values()) > 2 * max(hash_routed.values())

    def test_lossy_run_stays_consistent(self):
        result = run_simulation(
            SimulationSpec(
                directory_size=30,
                operations=250,
                seed=41,
                shards=3,
                shard_map="hash",
                loss=0.03,
                retries=4,
                verify_model=True,
                audit=True,
                audit_interval=125,
            )
        )
        assert result.model_mismatches == 0
        assert result.audit_report is not None
        assert result.audit_report.ok

    def test_crash_isolates_to_one_shard(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=5), shards=2)
        sd.insert(0.2, "left")
        sd.insert(0.8, "right")
        # Lose shard 1's quorum entirely.
        for rep in ("A", "B", "C"):
            sd.shard(1).crash(rep)
        # Shard 0 keeps serving.
        assert sd.lookup(0.2) == (True, "left")
        sd.insert(0.3, "still-works")
        # Shard 1 is unavailable, not wrong.
        from repro.core.errors import NetworkError

        with pytest.raises(NetworkError):
            sd.lookup(0.8)
        for rep in ("A", "B", "C"):
            sd.shard(1).recover(rep)
        assert sd.lookup(0.8) == (True, "right")
