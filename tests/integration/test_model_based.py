"""Model-based integration tests: the suite must behave like a dict.

For several configurations, stores, batch sizes, and quorum policies, a
long random operation sequence is applied both to the replicated directory
and to a plain dict; presence and values must agree at every step, and the
suite's authoritative state (highest-version verdict over all replicas)
must equal the dict at the end.
"""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError
from repro.core.quorum import StickyQuorumPolicy


def run_model_check(cluster, n_ops, seed, key_space=50):
    suite = cluster.suite
    model = {}
    rng = random.Random(seed)
    for i in range(n_ops):
        k = rng.randint(0, key_space)
        op = rng.random()
        if op < 0.35:
            if k in model:
                with pytest.raises(KeyAlreadyPresentError):
                    suite.insert(k, i)
            else:
                suite.insert(k, i)
                model[k] = i
        elif op < 0.55:
            if k in model:
                suite.update(k, i)
                model[k] = i
            else:
                with pytest.raises(KeyNotPresentError):
                    suite.update(k, i)
        elif op < 0.8:
            if k in model:
                suite.delete(k)
                del model[k]
            else:
                with pytest.raises(KeyNotPresentError):
                    suite.delete(k)
        else:
            present, value = suite.lookup(k)
            assert present == (k in model)
            if present:
                assert value == model[k]
    assert suite.authoritative_state() == model
    cluster.check_invariants()
    return model


@pytest.mark.parametrize(
    "spec", ["1-1-1", "2-1-2", "3-2-2", "3-1-3", "4-2-3", "5-3-3"]
)
def test_configurations_behave_like_dict(spec):
    cluster = DirectoryCluster.create(ClusterSpec(config=spec, seed=hash(spec) % 1000))
    run_model_check(cluster, n_ops=600, seed=17)


def test_weighted_votes_behave_like_dict():
    # A heavy replica carrying 3 of 5 votes: every quorum must include it.
    from repro.core.config import SuiteConfig

    config = SuiteConfig(
        votes={"big": 3, "s1": 1, "s2": 1}, read_quorum=3, write_quorum=3
    )
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=11))
    run_model_check(cluster, n_ops=500, seed=22)
    # The big replica saw every write; the small ones may lag.
    big = cluster.representatives["big"]
    assert big.entry_count() == len(cluster.suite.authoritative_state())


def test_weighted_votes_survive_small_replica_crashes():
    from repro.core.config import SuiteConfig

    config = SuiteConfig(
        votes={"big": 3, "s1": 1, "s2": 1}, read_quorum=3, write_quorum=3
    )
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=12))
    suite = cluster.suite
    suite.insert("k", 1)
    cluster.crash("s1")
    cluster.crash("s2")
    # The big replica alone carries any quorum.
    suite.update("k", 2)
    assert suite.lookup("k") == (True, 2)
    # But without the big one nothing works.
    cluster.recover("s1")
    cluster.recover("s2")
    cluster.crash("big")
    from repro.core.errors import QuorumUnavailableError

    with pytest.raises(QuorumUnavailableError):
        suite.lookup("k")


def test_btree_store_behaves_like_dict():
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", store="btree", seed=4))
    run_model_check(cluster, n_ops=800, seed=18)


def test_batched_neighbor_search_behaves_like_dict():
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, neighbor_batch_size=3))
    run_model_check(cluster, n_ops=800, seed=19)


def test_sticky_quorums_behave_like_dict():
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6, quorum_policy=StickyQuorumPolicy(switch_prob=0.1)))
    run_model_check(cluster, n_ops=600, seed=20)


def test_locking_enabled_behaves_like_dict():
    # Serial transactions with full lock bookkeeping enabled.
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7, locking=True))
    run_model_check(cluster, n_ops=400, seed=21)
    # Everything committed: every lock table must be idle.
    for rep in cluster.representatives.values():
        assert rep.locks.is_idle()


def test_version_numbers_never_regress():
    # For every key ever touched, the best-known version over any read
    # is non-decreasing across operations.
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=8))
    suite = cluster.suite
    rng = random.Random(9)
    best_seen: dict[int, int] = {}
    members = set()
    for i in range(500):
        k = rng.randint(0, 20)
        if k in members and rng.random() < 0.5:
            suite.delete(k)
            members.discard(k)
        elif k not in members:
            suite.insert(k, i)
            members.add(k)
        else:
            suite.update(k, i)
        # Probe the full-vote version for key k.
        txn = suite.txn_manager.begin()
        from repro.core.keys import wrap

        reply = suite._suite_lookup(txn, wrap(k))
        suite.txn_manager.abort(txn)
        assert reply.version >= best_seen.get(k, 0)
        best_seen[k] = reply.version
