"""Integration tests for fault masking under message loss.

These exercise the full stack — lossy network, idempotent in-transaction
RPC re-issue, 2PC completion retries, pending-decision re-delivery, and
the retrying front-end — against a real cluster, where the unit tests
use fakes.
"""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import ReproError
from repro.core.resilient import ResilientSuite, RetryPolicy
from repro.net.failures import LossEvent, LossyLinks, ScriptedLoss
from repro.repl import ReplicaJoin, wipe_replica
from repro.sim.driver import SimulationSpec, run_simulation
from repro.sim.workload import OpMix


class TestCompletionRetries:
    """Lost commit/abort deliveries and the decision re-delivery path."""

    def _single_rep_cluster(self):
        # One representative with one vote: every transaction touches A,
        # so scripted loss on dir:A.commit hits deterministically.
        cluster = DirectoryCluster.create(ClusterSpec(config="1-1-1", seed=3))
        cluster.suite.insert("k", 1)
        return cluster

    def test_lost_commit_reply_is_redelivered_inline(self):
        cluster = self._single_rep_cluster()
        faults = ScriptedLoss([LossEvent("reply", method="dir:A.commit")])
        cluster.network.install_faults(faults)
        cluster.suite.update("k", 2)  # commit applied, reply lost, re-sent
        assert faults.exhausted
        assert cluster.suite.txn_manager.pending_completions == {}
        cluster.network.install_faults(None)
        assert cluster.suite.lookup("k") == (True, 2)
        cluster.check_invariants()

    def test_undeliverable_commit_parks_then_resolves(self):
        cluster = self._single_rep_cluster()
        # Drop every commit request the coordinator will try (1 initial
        # + 8 completion retries): the decision is durable in the log
        # but cannot reach the participant.
        faults = ScriptedLoss(
            [LossEvent("request", method="dir:A.commit") for _ in range(9)]
        )
        cluster.network.install_faults(faults)
        cluster.suite.update("k", 2)  # still reports success: decided
        assert faults.exhausted
        pending = cluster.suite.txn_manager.pending_completions
        assert len(pending) == 1
        (decision, participants) = next(iter(pending.values()))
        assert decision == "commit"
        assert set(participants) == {"A"}
        # Heal the network and re-deliver: the participant learns the
        # outcome, releases its locks, and the directory reads cleanly.
        cluster.network.install_faults(None)
        assert cluster.suite.txn_manager.resolve_pending() == 1
        assert cluster.suite.txn_manager.pending_completions == {}
        assert cluster.suite.lookup("k") == (True, 2)
        cluster.check_invariants()

    def test_resolve_pending_is_safe_when_nothing_pending(self):
        cluster = self._single_rep_cluster()
        assert cluster.suite.txn_manager.resolve_pending() == 0


#: Crash-at-every-2PC-state scenarios, on a 2-1-2 suite (writes are
#: unanimous, so participant B deterministically joins every write).
#: ``events`` builds the scripted loss that freezes the protocol in the
#: named state at B; ``committed`` is the outcome the client must see.
#: 9 drops of the same message = 1 initial try + 8 completion retries.
_TWO_PC_STATES = {
    # B logged its prepare and applied (volatile) effects, but its vote
    # never arrives (the idempotent re-issues are dropped too): the
    # coordinator times out and aborts.  B crashes holding an in-doubt
    # prepare that must resolve by presumed abort.
    "prepare-logged": {
        "events": lambda: [
            LossEvent("reply", method="dir:B.prepare") for _ in range(9)
        ]
        + [LossEvent("request", method="dir:B.abort") for _ in range(9)],
        "committed": False,
    },
    # The commit decision is durable at the coordinator but reaches no
    # participant: the client saw success, yet nobody applied it.
    "decided-uncommitted": {
        "events": lambda: [
            LossEvent("request", method="dir:A.commit") for _ in range(9)
        ]
        + [LossEvent("request", method="dir:B.commit") for _ in range(9)],
        "committed": True,
    },
    # A committed, B never heard the decision and crashes in doubt.
    "partially-committed": {
        "events": lambda: [
            LossEvent("request", method="dir:B.commit") for _ in range(9)
        ],
        "committed": True,
    },
}


class TestCrashAtEvery2PCState:
    """Crash participant B at each 2PC state; the suite must converge.

    Convergence = the client-visible outcome is honored everywhere:
    after ``resolve_pending()`` re-delivers parked decisions and the
    crashed participant rejoins, both replicas hold exactly the
    committed state and every invariant audit is clean.
    """

    def _run_to_crash(self, state):
        case = _TWO_PC_STATES[state]
        cluster = DirectoryCluster.create(ClusterSpec(config="2-1-2", seed=21))
        suite = cluster.suite
        suite.insert("k", "old")
        faults = ScriptedLoss(case["events"]())
        cluster.network.install_faults(faults)
        try:
            suite.update("k", "new")
            saw_commit = True
        except ReproError:
            saw_commit = False
        assert saw_commit == case["committed"]
        cluster.network.install_faults(None)
        cluster.crash("B")  # all volatile state lost, WAL survives
        return cluster, "new" if case["committed"] else "old"

    def _assert_converged(self, cluster, expected):
        suite = cluster.suite
        suite.txn_manager.resolve_pending()
        assert suite.txn_manager.pending_completions == {}
        assert suite.lookup("k") == (True, expected)
        assert suite.authoritative_state() == {"k": expected}
        # Writes are unanimous in 2-1-2: after resolution both replicas
        # must hold the decided value, byte for byte.
        for rep in cluster.representatives.values():
            entries = rep.user_entries()
            assert [(e.key.payload, e.value) for e in entries] == [
                ("k", expected)
            ]
        cluster.check_invariants()

    @pytest.mark.parametrize("state", sorted(_TWO_PC_STATES))
    def test_wal_rejoin_converges(self, state):
        cluster, expected = self._run_to_crash(state)
        cluster.recover("B")  # WAL replay + decision-log resolution
        cluster.suite.txn_manager.resolve_pending()
        self._assert_converged(cluster, expected)

    @pytest.mark.parametrize("state", sorted(_TWO_PC_STATES))
    def test_wipe_and_online_rejoin_converges(self, state):
        # The harsher variant: B's log is wiped too, so nothing about
        # the in-doubt transaction survives; the online join must still
        # land B on the decided state.
        cluster, expected = self._run_to_crash(state)
        wipe_replica(cluster, "B")
        # The donor must quiesce first: an undelivered decision keeps
        # locks (and undo) alive at A, which blocks its snapshot export
        # until the parked completion is re-delivered.  B's own parked
        # delivery stays pending while it is down and drains after the
        # join (inside _assert_converged).
        cluster.suite.txn_manager.resolve_pending()
        ReplicaJoin(cluster, "B").run()
        assert cluster.suite.membership.all_up
        self._assert_converged(cluster, expected)


class TestRetryingFrontEndEndToEnd:
    def test_masks_random_loss_on_a_real_cluster(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=11))
        for i in range(20):
            cluster.suite.insert(f"k{i:02d}", i)
        cluster.network.install_faults(
            LossyLinks(request_loss=0.05, reply_loss=0.05, rng=random.Random(4))
        )
        cluster.suite.rpc_retries = 2
        front = ResilientSuite(
            cluster.suite,
            policy=RetryPolicy(max_attempts=5),
            rng=random.Random(5),
        )
        for i in range(20):
            front.update(f"k{i:02d}", i * 10)
            present, value = front.lookup(f"k{i:02d}")
            assert (present, value) == (True, i * 10)
        cluster.network.install_faults(None)
        cluster.suite.txn_manager.resolve_pending()
        state = cluster.suite.authoritative_state()
        assert state == {f"k{i:02d}": i * 10 for i in range(20)}
        cluster.check_invariants()


class TestChaosSimulation:
    """The driver's chaos path end to end, with the model oracle on."""

    def _spec(self, retries: int) -> SimulationSpec:
        return SimulationSpec(
            config="3-2-2",
            directory_size=50,
            operations=400,
            seed=9,
            mix=OpMix(insert=1, update=1, delete=1, lookup=3),
            loss=0.05,
            retries=retries,
            verify_model=True,
        )

    def test_retries_mask_all_faults(self):
        result = run_simulation(self._spec(retries=4))
        assert result.failed_operations == 0
        assert result.model_mismatches == 0
        assert result.metrics.get("net.loss.requests_dropped", 0) > 0

    def test_no_retries_still_no_duplicates(self):
        # Without the retrying front-end clients see errors, but the
        # exactly-once oracle must still hold: an aborted attempt leaves
        # no effects and a committed one is never double-applied.
        result = run_simulation(self._spec(retries=0))
        assert result.model_mismatches == 0
