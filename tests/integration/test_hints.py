"""Integration tests for zero-vote hint representatives."""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.config import SuiteConfig
from repro.core.hints import HintedDirectory


def hinted_cluster(seed=1, refresh_on_miss=True):
    config = SuiteConfig(
        votes={"A": 1, "B": 1, "C": 1, "H": 0},
        read_quorum=2,
        write_quorum=2,
    )
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=seed))
    hinted = HintedDirectory(
        cluster.suite, hint="H", refresh_on_miss=refresh_on_miss
    )
    return cluster, hinted


class TestValidation:
    def test_hint_requires_zero_votes(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        with pytest.raises(ValueError):
            HintedDirectory(cluster.suite, hint="A")

    def test_unknown_hint_rejected(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        with pytest.raises(ValueError):
            HintedDirectory(cluster.suite, hint="Z")

    def test_quorums_never_include_the_hint(self):
        cluster, hinted = hinted_cluster()
        for i in range(30):
            hinted.insert(i, i)
        assert cluster.representative("H").entry_count() == 0


class TestHintedLookup:
    def test_never_returns_stale_data(self):
        cluster, hinted = hinted_cluster(seed=2)
        model = {}
        rng = random.Random(3)
        for i in range(400):
            k = rng.randint(0, 25)
            roll = rng.random()
            if roll < 0.3 and k in model:
                hinted.delete(k)
                del model[k]
            elif roll < 0.6 and k not in model:
                hinted.insert(k, i)
                model[k] = i
            elif k in model and roll < 0.75:
                hinted.update(k, i)
                model[k] = i
            else:
                present, value = hinted.lookup(k)
                assert present == (k in model)
                if present:
                    assert value == model[k]
        cluster.check_invariants()

    def test_repeated_reads_become_hits(self):
        cluster, hinted = hinted_cluster(seed=4)
        hinted.insert("k", "v")
        hinted.lookup("k")  # miss (hint empty) + refresh
        before_hits = hinted.stats.hits
        for _ in range(10):
            assert hinted.lookup("k") == (True, "v")
        assert hinted.stats.hits >= before_hits + 10
        assert hinted.stats.hit_rate > 0.5

    def test_update_invalidates_hint_until_next_miss(self):
        cluster, hinted = hinted_cluster(seed=5)
        hinted.insert("k", "v1")
        hinted.lookup("k")  # refresh hint to v1
        hinted.update("k", "v2")  # hint now stale
        # Validation catches the stale hint; the answer is still correct.
        assert hinted.lookup("k") == (True, "v2")
        # And the miss refreshed the hint, so the next read hits.
        hits_before = hinted.stats.hits
        assert hinted.lookup("k") == (True, "v2")
        assert hinted.stats.hits == hits_before + 1

    def test_absent_keys_hit_when_gap_versions_agree(self):
        cluster, hinted = hinted_cluster(seed=6)
        # Nothing inserted: both hint and quorum report gap version 0.
        present, value = hinted.lookup("never-inserted")
        assert (present, value) == (False, None)
        assert hinted.stats.hits == 1

    def test_hint_node_down_falls_back(self):
        cluster, hinted = hinted_cluster(seed=7)
        hinted.insert("k", "v")
        cluster.crash("H")
        assert hinted.lookup("k") == (True, "v")
        assert hinted.stats.hint_unavailable >= 1
        cluster.recover("H")
        assert hinted.lookup("k") == (True, "v")

    def test_no_refresh_mode(self):
        cluster, hinted = hinted_cluster(seed=8, refresh_on_miss=False)
        hinted.insert("k", "v")
        hinted.lookup("k")
        hinted.lookup("k")
        assert hinted.stats.refreshes == 0
        assert cluster.representative("H").entry_count() == 0


class TestMessageEconomics:
    def test_hit_path_ships_fewer_payload_items(self):
        # A hit carries one full entry (from the hint) plus version-only
        # probes; a full lookup ships full replies from the whole quorum.
        cluster, hinted = hinted_cluster(seed=9)
        hinted.insert("k", "v")
        hinted.lookup("k")  # warm the hint
        cluster.network.stats.reset()
        hinted.lookup("k")  # hit
        by_method = cluster.network.stats.by_method
        version_probes = sum(
            c for m, c in by_method.items() if "rep_lookup_version" in m
        )
        full_reads = sum(
            c
            for m, c in by_method.items()
            if m.endswith("rep_lookup")
        )
        assert version_probes == 2  # R = 2, versions only
        assert full_reads == 1  # just the hint's data read
