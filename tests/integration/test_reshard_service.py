"""End-to-end coverage of live resharding through the service.

Boots the real asyncio front door over a sharded directory and drives a
split through it: the ``SHARDMAP`` / ``RESHARD`` verbs, ``@epoch=``
reply stamping, the ``-MOVED`` redirect a stale client chases, and the
wire-compatibility promise that epoch-unaware clients never notice any
of it.  The front door only mounts on the asyncio transport, so the
socket tests run there; the same stale-epoch redirect contract over the
*simulated* substrate is exercised directly against the directory (the
server's dispatch gate is a one-line call into it) plus the wire codec
that would carry the error.
"""

from __future__ import annotations

import socket

import pytest

from repro.cluster import ClusterSpec
from repro.core.errors import StaleEpochError
from repro.service import protocol, wire
from repro.service.client import DirectoryClient
from repro.service.server import DirectoryService
from repro.shard.maps import RangeShardMap
from repro.shard.sharded import ShardedDirectory


@pytest.fixture()
def service():
    spec = ClusterSpec(config="3-2-2", seed=13, transport="asyncio")
    with ShardedDirectory.create(
        spec, shards=2, shard_map=RangeShardMap(["m"])
    ) as d:
        with DirectoryService(d).start() as svc:
            yield svc


def load(client, n=16):
    for i in range(n):
        client.set(f"key{i:02d}", f"v{i}")


class TestShardMapVerb:
    def test_shardmap_shape_and_caching(self, service):
        with DirectoryClient(service.host, service.port) as c:
            info = c.shardmap()
            assert info["epoch"] == 0
            assert info["shards"] == 2
            assert info["kind"] == "range"
            assert info["boundaries"] == ["m"]
            assert info["owners"] == [0, 1]
            assert c.shardmap() is info  # cached until the epoch moves


class TestLiveSplitThroughTheService:
    def test_reshard_split_verb_migrates_and_bumps_epoch(self, service):
        with DirectoryClient(service.host, service.port) as c:
            load(c)
            result = c.reshard("key08")
            assert result["done"] is True
            assert result["epoch"] == 1
            assert result["kind"] == "split"
            assert result["violations"] == 0
            assert result["moved"] == 8  # key08..key15
            assert c.epoch == 1
            assert c.shardmap(refresh=True)["shards"] == 3
            status = c.reshard_status()
            assert status == {"epoch": 1, "active": False, "migrations": 1}
            for i in range(16):
                assert c.get(f"key{i:02d}") == f"v{i}"
            assert service.directory.shard_for("key09") == 2

    def test_stale_client_chases_moved_and_succeeds(self, service):
        with DirectoryClient(service.host, service.port) as fresh:
            load(fresh)
            stale = DirectoryClient(service.host, service.port)
            assert stale.get("key09") == "v9"  # caches epoch 0
            assert stale.epoch == 0
            fresh.reshard("key08")
            stale.set("key09", "rewritten")  # -MOVED, refresh, retry
            assert stale.redirects == 1
            assert stale.epoch == 1
            assert fresh.get("key09") == "rewritten"
            # Reads on unmoved keys never redirected.
            assert stale.get("key01") == "v1"
            assert stale.redirects == 1
            stale.close()

    def test_moved_redirect_is_not_a_front_error(self, service):
        with DirectoryClient(service.host, service.port) as fresh:
            load(fresh)
            stale = DirectoryClient(service.host, service.port)
            stale.get("key09")
            fresh.reshard("key08")
            stale.set("key09", "x")
            assert stale.redirects == 1
            assert fresh.metrics().get("service.front.errors", 0) == 0
            stale.close()

    def test_epoch_unaware_client_works_across_a_split(self, service):
        with DirectoryClient(service.host, service.port) as c:
            load(c)
            with DirectoryClient(
                service.host, service.port, epochs=False
            ) as old:
                assert old.get("key09") == "v9"
                c.reshard("key08")
                # No epoch metadata, no -MOVED, no stamped replies: the
                # pre-epoch wire dialect keeps working unchanged.
                old.set("key09", "old-write")
                assert old.get("key09") == "old-write"
                assert old.epoch is None and old.redirects == 0

    def test_stats_carry_epoch_and_reshard_state(self, service):
        with DirectoryClient(service.host, service.port) as c:
            load(c)
            assert c.stats()["epoch"] == 0
            c.reshard("key08")
            stats = c.stats()
            assert stats["epoch"] == 1
            assert stats["reshard"]["migrations"] == 1
            assert stats["reshard"]["active"] is False
            assert set(stats["per_shard"]) == {"s0", "s1", "s2"}


class TestEpochWireFormat:
    def _raw(self, service, payload: bytes) -> bytes:
        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            return sock.makefile("rb").readline()

    def test_replies_stamped_only_when_requested(self, service):
        stamped = self._raw(
            service, protocol.encode_command("SET", "wk", "v", "@epoch=0")
        )
        assert stamped == b"+OK @epoch=0\r\n"
        plain = self._raw(service, protocol.encode_command("SET", "wk", "v"))
        assert plain == b"+OK\r\n"

    def test_future_epoch_is_stale_too(self, service):
        # An epoch the server never issued cannot be validated against
        # history, so it redirects the client to resynchronize.
        reply = self._raw(
            service, protocol.encode_command("GET", "wk", "@epoch=9")
        )
        assert reply.startswith(b"-MOVED 0")

    def test_malformed_epoch_metadata_is_dropped(self, service):
        reply = self._raw(
            service,
            protocol.encode_command("SET", "wk", "v", "@epoch=notanumber"),
        )
        assert reply == b"+OK\r\n"


class TestRedirectContractOnSimTransport:
    """The stale-epoch redirect over the simulated substrate.

    The asyncio front door cannot mount on :class:`SimTransport`, so
    here the client's side of the dance is played directly: a cached
    epoch-0 map keeps working for unmoved keys, misroutes a moved key
    (the server's ``require_epoch`` gate answers ``-MOVED``), and a
    refresh of the map resolves it — the identical protocol the socket
    tests drive end to end above.
    """

    def test_stale_epoch_redirect_and_refresh(self):
        spec = ClusterSpec(config="3-2-2", seed=13)  # simulated network
        with ShardedDirectory.create(
            spec, shards=2, shard_map=RangeShardMap(["m"])
        ) as d:
            for i in range(16):
                d.insert(f"key{i:02d}", f"v{i}")
            stale_epoch = d.epoch  # the "client's" cached map
            d.begin_split("key08").run()

            d.require_epoch("key01", stale_epoch)  # unmoved: no redirect
            with pytest.raises(StaleEpochError) as excinfo:
                d.require_epoch("key09", stale_epoch)  # moved: redirect
            # The error names the epoch to refresh to — the -MOVED
            # payload — and the retried request at that epoch succeeds.
            assert excinfo.value.epoch == 1
            d.require_epoch("key09", excinfo.value.epoch)
            assert d.lookup("key09") == (True, "v9")

    def test_stale_epoch_error_survives_the_wire_codec(self):
        # The internal RPC surface carries typed errors; a redirect must
        # arrive as a StaleEpochError with its epoch intact, not as an
        # anonymous RemoteError.
        err = wire.decode_error(wire.encode_error(StaleEpochError(3, "k")))
        assert isinstance(err, StaleEpochError)
        assert err.epoch == 3
        assert err.key == "k"
