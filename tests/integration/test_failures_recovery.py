"""Integration tests for crashes, recovery, and partitions.

The availability contract: operations succeed whenever enough votes are
reachable and raise QuorumUnavailableError otherwise; crashed
representatives recover their committed state from the write-ahead log;
no partial effects ever become visible.
"""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    NetworkError,
    QuorumUnavailableError,
    TransactionError,
)
from repro.net.failures import RandomFailures


class TestSingleCrash:
    def test_322_survives_one_crash(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        cluster322.crash("A")
        # R = W = 2 out of the remaining {B, C}: everything still works.
        assert suite.lookup("k") == (True, 1)
        suite.update("k", 2)
        suite.insert("j", 3)
        suite.delete("j")
        assert suite.lookup("k") == (True, 2)

    def test_322_two_crashes_block_operations(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        cluster322.crash("A")
        cluster322.crash("B")
        with pytest.raises(QuorumUnavailableError):
            suite.lookup("k")
        with pytest.raises(QuorumUnavailableError):
            suite.insert("x", 1)

    def test_recovery_restores_committed_state(self, cluster322):
        suite = cluster322.suite
        for i in range(20):
            suite.insert(i, i)
        snapshot_before = cluster322.representative("A").store.snapshot()
        cluster322.crash("A")
        cluster322.recover("A")
        assert (
            cluster322.representative("A").store.snapshot() == snapshot_before
        )

    def test_work_done_during_crash_not_lost_elsewhere(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        cluster322.crash("A")
        suite.update("k", 2)  # committed on {B, C}
        cluster322.recover("A")
        # A recovered to its old state, but the suite answer is current
        # from any quorum because {B,C} outvote A's stale version.
        for _ in range(10):
            assert suite.lookup("k") == (True, 2)


class TestPartitions:
    def test_partitioned_minority_unavailable(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        # A alone on one side; client with the B/C majority.
        cluster322.network.partition(["node-A"], ["node-B", "node-C", "client"])
        # Suite still works through B and C.
        assert suite.lookup("k") == (True, 1)
        suite.update("k", 2)

    def test_client_cut_off_from_majority(self, cluster322):
        suite = cluster322.suite
        suite.insert("k", 1)
        cluster322.network.partition(["node-A", "client"], ["node-B", "node-C"])
        with pytest.raises(QuorumUnavailableError):
            suite.lookup("k")
        cluster322.network.heal()
        assert suite.lookup("k") == (True, 1)


class TestAtomicity:
    def test_no_partial_insert_visible_after_mid_operation_crash(self):
        """Crash a representative mid-delete: the 2PC must abort and the
        suite must look untouched."""
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=13))
        suite = cluster.suite
        for key in ("a", "b", "c"):
            suite.insert(key, key)
        state_before = suite.authoritative_state()

        # Sabotage: crash node-B the moment rep B performs a coalesce.
        rep_b = cluster.representative("B")
        original = rep_b.rep_coalesce

        def crash_during_coalesce(*args, **kwargs):
            result = original(*args, **kwargs)
            cluster.network.node("node-B").crash()
            return result

        rep_b.rep_coalesce = crash_during_coalesce
        failed = 0
        for key in ("a", "b", "c"):
            try:
                suite.delete(key)
            except (NetworkError, TransactionError):
                failed += 1
                break  # B crashed mid-delete
        if failed:
            cluster.recover("B")
            rep_b.rep_coalesce = original
            # The failed delete left no trace: state unchanged.
            assert suite.authoritative_state() == state_before
            cluster.check_invariants()

    def test_prepare_refuses_after_crash_mid_transaction(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=14))
        suite = cluster.suite
        suite.insert("x", 1)
        # Crash + instant recovery of a representative between a rep-level
        # operation and the commit: prepare must vote no.
        rep_names = list(cluster.representatives)
        target = rep_names[0]

        original_insert = cluster.representative(target).rep_insert
        state = {"armed": True}

        def insert_then_bounce(*args, **kwargs):
            result = original_insert(*args, **kwargs)
            if state["armed"]:
                state["armed"] = False
                cluster.crash(target)
                cluster.recover(target)
            return result

        cluster.representative(target).rep_insert = insert_then_bounce
        before = suite.authoritative_state()
        outcome_error = None
        try:
            suite.insert("y", 2)
        except (NetworkError, TransactionError) as exc:
            outcome_error = exc
        cluster.representative(target).rep_insert = original_insert
        if outcome_error is not None:
            # Aborted cleanly: y must not exist anywhere current.
            assert suite.authoritative_state() == before
        else:
            # The bounced representative was not in the write quorum.
            assert suite.lookup("y") == (True, 2)


class TestChurnWithRandomFailures:
    def test_workload_under_churn_stays_consistent(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=15))
        suite = cluster.suite
        injector = RandomFailures(
            cluster.network,
            crash_prob=0.02,
            recover_prob=0.3,
            rng=random.Random(42),
        )
        model = {}
        rng = random.Random(43)
        failed_ops = 0
        for i in range(600):
            injector.step()
            k = rng.randint(0, 30)
            try:
                if k in model and rng.random() < 0.5:
                    suite.delete(k)
                    del model[k]
                elif k not in model:
                    suite.insert(k, i)
                    model[k] = i
                else:
                    suite.update(k, i)
                    model[k] = i
            except (NetworkError, TransactionError):
                failed_ops += 1
        # Recover everyone and compare against the model.
        for name in cluster.representatives:
            cluster.recover(name)
        assert suite.authoritative_state() == model
        cluster.check_invariants()
        # Lookups agree with the model for every key in range.
        for k in range(31):
            present, value = suite.lookup(k)
            assert present == (k in model)
            if present:
                assert value == model[k]
