"""SimTransport must be a zero-cost veneer over the simulated Network.

The Transport seam (PR 6) rehosted every RPC the suite issues.  These
tests pin the refactor three ways:

* the three pre-refactor serial baselines (captured before the seam
  existed, shared with ``tests/unit/test_fanout.py``) reproduce
  bit-for-bit through an *explicitly* requested ``transport="sim"`` —
  same message counts, same simulated latency, same final directory;
* the default (no transport named) and the explicit ``"sim"`` string
  and a hand-built :class:`SimTransport` instance all produce identical
  runs — three spellings, one substrate;
* the delegation surface really is the network underneath (same clock
  object, same stats object), so no test can pass by accident of a
  parallel bookkeeping copy drifting in step.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.net.network import Network
from repro.net.transport import SimTransport
from repro.sim.driver import run_simulation
from tests.unit.test_fanout import SERIAL_BASELINES


def _drive(spec, transport):
    cluster = DirectoryCluster.create(
        ClusterSpec(
            config=spec.config,
            seed=spec.seed,
            neighbor_batch_size=spec.neighbor_batch_size,
            read_repair=spec.read_repair,
            transport=transport,
        )
    )
    return run_simulation(spec, cluster=cluster), cluster


class TestPinnedBaselines:
    @pytest.mark.parametrize(
        "spec,expected",
        SERIAL_BASELINES,
        ids=["perfect", "lossy", "batched-neighbors"],
    )
    def test_sim_transport_reproduces_pre_refactor_run(self, spec, expected):
        result, _ = _drive(spec, "sim")
        for key, value in expected.items():
            if key in ("sim_ticks", "final_size"):
                assert getattr(result, key) == value, key
            else:
                assert result.traffic[key] == value, key
        assert result.failed_operations == 0
        assert result.model_mismatches == 0

    def test_three_spellings_one_substrate(self):
        spec, expected = SERIAL_BASELINES[0]
        runs = {}
        for label, transport in [
            ("default", None),
            ("named", "sim"),
            ("instance", SimTransport(Network())),
        ]:
            result, _ = _drive(spec, transport)
            runs[label] = (
                result.traffic["messages"],
                result.traffic["rpc_rounds"],
                result.sim_ticks,
                result.final_size,
            )
        assert runs["default"] == runs["named"] == runs["instance"]
        assert runs["default"][0] == expected["messages"]


class TestDelegation:
    def test_sim_transport_is_the_network(self):
        cluster = DirectoryCluster.create(
            ClusterSpec(config="3-2-2", seed=1, transport="sim")
        )
        transport = cluster.transport
        assert isinstance(transport, SimTransport)
        net = transport.network
        assert cluster.network is net
        assert transport.clock is net.clock
        assert transport.metrics is net.metrics
        # Liveness answers come straight from the network's node table.
        node = cluster.suite.placements["A"].node_id
        assert transport.is_up(node)
        cluster.crash("A")
        assert not transport.is_up(node)
        assert not net.node(node).is_up
        cluster.recover("A")
        assert transport.is_up(node)

    def test_suite_clock_is_the_simulated_clock(self):
        cluster = DirectoryCluster.create(
            ClusterSpec(config="3-2-2", seed=2)
        )
        before = cluster.suite.clock.now()
        cluster.suite.insert("k", 1)
        after = cluster.suite.clock.now()
        assert after > before
        assert cluster.network.clock.now() == after
