"""End-to-end observability: span dumps reconcile, replay, and cost nothing.

Three contracts from the observability layer:

1. A traced simulation's span trees account for the network traffic
   *exactly* — per-operation message counts sum to the run's traffic
   counters (no double counting, nothing missed).
2. A span dump is a trace: serialising a traced run and replaying the
   reconstructed operation stream on a fresh cluster reproduces the
   original run's authoritative directory state.
3. With tracing off (the default), nothing is recorded anywhere.
"""

import pytest

from repro.cluster import ClusterSpec
from repro import (
    DirectoryCluster,
    SimulationSpec,
    dump_spans,
    load_spans,
    run_simulation,
    spans_to_trace,
)
from repro.obs.export import total_messages, total_rpc_rounds
from repro.obs.spans import NULL_TRACER, RecordingTracer
from repro.sim.trace import replay


class TestTrafficReconciliation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation(
            SimulationSpec(
                config="3-2-2",
                directory_size=40,
                operations=400,
                seed=11,
                trace_spans=True,
            )
        )

    def test_span_messages_match_traffic_exactly(self, result):
        assert total_messages(result.spans) == result.traffic["messages"]

    def test_span_rpc_rounds_match_traffic_exactly(self, result):
        assert total_rpc_rounds(result.spans) == result.traffic["rpc_rounds"]

    def test_one_root_span_per_measured_operation(self, result):
        assert len(result.spans) == result.spec.operations
        assert all(s.name.startswith("op:") for s in result.spans)

    def test_metrics_snapshot_agrees_with_spans(self, result):
        assert result.metrics["net.traffic"]["messages"] == total_messages(
            result.spans
        )
        ops = result.metrics["suite.ops"]
        assert ops["total"] == len(result.spans)

    def test_failed_operations_carry_error_status(self, result):
        failed_spans = [s for s in result.spans if s.status != "ok"]
        assert len(failed_spans) == result.failed_operations


class TestSpanDumpReplay:
    def _drive(self, cluster):
        suite = cluster.suite
        suite.insert("alice", "room 4101")
        suite.insert("bob", "room 4203")
        suite.insert("carol", "room 4300")
        suite.update("bob", "room 9999")
        suite.delete("alice")
        suite.insert("dave", "room 1000")
        suite.delete("carol")
        suite.lookup("bob")

    def test_dump_replays_to_identical_state(self):
        traced = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, tracer=RecordingTracer()))
        self._drive(traced)
        # full serialisation round trip: dump text -> spans -> trace
        text = dump_spans(traced.tracer.finished_roots())
        trace = spans_to_trace(load_spans(text))

        fresh = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=99))
        replay(trace, fresh.suite)
        assert (
            fresh.suite.authoritative_state()
            == traced.suite.authoritative_state()
        )

    def test_failed_operations_are_not_replayed(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, tracer=RecordingTracer()))
        cluster.suite.insert("a", 1)
        cluster.crash("B")
        cluster.crash("C")  # only A up: no quorum, writes abort
        from repro.core.errors import NetworkError

        with pytest.raises(NetworkError):
            cluster.suite.insert("b", 2)
        cluster.recover("B")
        cluster.recover("C")
        cluster.suite.insert("c", 3)

        trace = spans_to_trace(cluster.tracer.finished_roots())
        fresh = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        replay(trace, fresh.suite)
        assert (
            fresh.suite.authoritative_state()
            == cluster.suite.authoritative_state()
        )

    def test_simulation_dump_replays(self):
        spec = SimulationSpec(
            config="3-2-2",
            directory_size=25,
            operations=150,
            seed=21,
            trace_spans=True,
        )
        traced = DirectoryCluster.create(ClusterSpec(config=spec.config, seed=spec.seed, tracer=RecordingTracer()))
        result = run_simulation(spec, cluster=traced)
        # The tracer resets when measurement starts, so the dump covers
        # the measured stream only; give the fresh cluster the same load
        # phase (deterministic from the workload seed), then replay.
        from repro.sim.workload import UniformWorkload

        fresh = DirectoryCluster.create(ClusterSpec(config=spec.config, seed=1))
        workload = UniformWorkload(
            target_size=spec.directory_size, seed=spec.seed + 1
        )
        for op in workload.initial_load(spec.directory_size):
            fresh.suite.insert(op.key, op.value)
        replay(spans_to_trace(result.spans), fresh.suite)

        assert (
            fresh.suite.authoritative_state()
            == traced.suite.authoritative_state()
        )
        assert len(fresh.suite.authoritative_state()) == result.final_size


class TestMetricCatalog:
    def test_documented_names_are_registered(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=2))
        cluster.suite.insert("a", 1)
        cluster.suite.lookup("a")
        names = set(cluster.metrics.names())
        expected = {
            "net.traffic",
            "net.clock",
            "suite.ops",
            "suite.delete_overhead",
            "suite.read_repairs",
            "suite.quorum.read.selections",
            "suite.quorum.read.members",
            "suite.quorum.write.selections",
            "suite.quorum.write.members",
            "rep.A.wal.appends",
            "rep.A.locks",
        }
        assert expected <= names
        snap = cluster.metrics.snapshot()
        assert snap["suite.ops"]["inserts"] == 1
        assert snap["suite.quorum.read.selections"] >= 1
        assert snap["suite.quorum.write.members"]["n"] >= 1
        # quorum choice is random, so aggregate the per-rep surfaces
        commits = sum(
            snap[f"rep.{r}.wal.appends"]["commit"] for r in ("A", "B", "C")
        )
        acquisitions = sum(
            snap[f"rep.{r}.locks"]["acquisitions"] for r in ("A", "B", "C")
        )
        assert commits >= 1
        assert acquisitions >= 1
        assert snap["net.traffic"]["messages"] > 0


class TestZeroCostWhenDisabled:
    def test_untraced_simulation_records_nothing(self):
        result = run_simulation(
            SimulationSpec(
                config="3-2-2", directory_size=20, operations=100, seed=3
            )
        )
        assert result.spans == []

    def test_default_cluster_uses_the_null_tracer(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        assert cluster.tracer is NULL_TRACER
        cluster.suite.insert("a", 1)
        cluster.suite.delete("a")
        assert cluster.tracer.finished_roots() == []

    def test_traced_and_untraced_runs_agree(self):
        spec = dict(config="3-2-2", directory_size=30, operations=200, seed=9)
        plain = run_simulation(SimulationSpec(**spec))
        traced = run_simulation(SimulationSpec(**spec, trace_spans=True))
        assert plain.traffic == traced.traffic
        assert plain.final_size == traced.final_size
        assert plain.stats_table() == traced.stats_table()
