"""Integration tests: online replica join, anti-entropy, driver knobs.

The full lifecycle stack against real clusters: a wiped replica rejoins
a live suite while writes keep flowing, the cutover audit proves the
joiner byte-identical, background sweeps kill ghosts without client
reads, and the simulation driver / asyncio service expose the same
machinery through their knobs.
"""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.repl import AntiEntropySweeper, ReplicaJoin, ReplicaState, wipe_replica
from repro.sim.driver import SimulationSpec, run_simulation


def _cluster(config="5-3-3", seed=13):
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=seed))
    for i in range(30):
        cluster.suite.insert(f"k{i:03d}", i)
    return cluster


class TestOnlineJoin:
    def test_wiped_replica_rejoins_while_writes_flow(self):
        cluster = _cluster()
        suite = cluster.suite
        victim = "E"
        cluster.crash(victim)
        wipe_replica(cluster, victim)
        for i in range(30, 60):  # writes the victim misses entirely
            suite.insert(f"k{i:03d}", i)
        join = ReplicaJoin(cluster, victim)
        join.start()
        assert suite.membership.state(victim) is ReplicaState.JOINING
        # Interleave join steps with live writes: the join must absorb
        # them (directly, via the widened write quorums) and still cut
        # over.
        i = 60
        for _ in range(200):
            suite.insert(f"k{i:03d}", i)
            i += 1
            if join.step():
                break
        assert join.done
        assert suite.membership.all_up
        # The cutover oracle: at this instant, no op lost or doubled.
        report = cluster.make_auditor().audit_join(victim)
        assert report.checks > 0
        assert report.ok, report.render()
        assert suite.authoritative_state() == {
            f"k{j:03d}": j for j in range(i)
        }
        cluster.check_invariants()

    def test_joining_replica_receives_writes_but_casts_no_votes(self):
        cluster = _cluster(config="3-2-2")
        suite = cluster.suite
        suite.membership.set_state("B", ReplicaState.JOINING)
        # No read vote: quorum selection screens B out entirely.
        assert "B" not in suite._eligible()
        # ... but every write still lands on it (non-voting recipient).
        suite.insert("fresh", 99)
        from repro.core.keys import wrap

        assert cluster.representative("B").contains(wrap("fresh"))
        assert suite.lookup("fresh") == (True, 99)

    def test_join_survives_donor_crash(self):
        cluster = _cluster()
        suite = cluster.suite
        cluster.crash("E")
        wipe_replica(cluster, "E")
        join = ReplicaJoin(cluster, "E")
        join.start()
        join.step()  # snapshot pulled: a donor is now chosen
        donor = join.donor
        assert donor is not None
        cluster.crash(donor)  # kill it mid-catch-up
        for _ in range(50):
            if join.step():
                break
        assert join.done
        report = cluster.make_auditor().audit_join("E")
        assert report.ok, report.render()
        cluster.recover(donor)

    def test_fresh_join_requires_idle_machine(self):
        cluster = _cluster(config="3-2-2")
        join = ReplicaJoin(cluster, "C")
        join.start()
        with pytest.raises(RuntimeError):
            join.start()

    def test_unknown_replica_rejected(self):
        cluster = _cluster(config="3-2-2")
        with pytest.raises(ValueError):
            ReplicaJoin(cluster, "Z")


class TestAntiEntropy:
    def test_ghosts_converge_to_zero_without_client_reads(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="5-3-3", seed=2))
        suite = cluster.suite
        sweeper = AntiEntropySweeper(cluster)
        for i in range(12):
            suite.insert(f"g{i:02d}", "doomed")
        sweeper.sweep_all(rounds=2)  # spread entries to all five replicas
        for i in range(12):
            suite.delete(f"g{i:02d}")  # gap lands on a 3-replica quorum
        assert cluster.make_auditor().run().ghosts > 0
        rounds = 0
        while cluster.make_auditor().run().ghosts:
            sweeper.sweep_all(rounds=1)
            rounds += 1
            assert rounds <= 5, "anti-entropy failed to converge"
        # Convergence came from replica-to-replica sweeps alone; all
        # replicas now agree byte for byte.
        digests = {
            rep.rep_tiling_digest()
            for rep in cluster.representatives.values()
        }
        assert len(digests) == 1
        report = cluster.make_auditor().run()
        assert report.ghosts == 0 and report.ok
        cluster.check_invariants()

    def test_sweep_skips_down_replicas(self):
        cluster = _cluster(config="3-2-2")
        cluster.crash("C")
        sweeper = AntiEntropySweeper(cluster)
        sweeper.sweep_all(rounds=1)  # must not raise
        snap = cluster.metrics.snapshot()
        assert snap.get("repl.antientropy.sweeps", 0) > 0
        cluster.recover("C")

    def test_sweeps_are_idempotent_once_converged(self):
        cluster = _cluster(config="3-2-2")
        sweeper = AntiEntropySweeper(cluster)
        sweeper.sweep_all(rounds=2)
        before = {
            name: rep.rep_tiling_digest()
            for name, rep in cluster.representatives.items()
        }
        repairs_before = cluster.metrics.snapshot().get(
            "repl.reconcile.repairs", 0
        )
        sweeper.sweep_all(rounds=2)
        after = {
            name: rep.rep_tiling_digest()
            for name, rep in cluster.representatives.items()
        }
        assert before == after
        assert (
            cluster.metrics.snapshot().get("repl.reconcile.repairs", 0)
            == repairs_before
        )


class TestDriverKnobs:
    def _spec(self, **overrides):
        base = dict(
            config="5-3-3",
            directory_size=60,
            operations=900,
            seed=17,
            loss=0.03,
            retries=3,
            verify_model=True,
            audit=True,
            crash_at=200,
            rejoin_at=450,
            wipe=True,
            antientropy_every=40,
        )
        base.update(overrides)
        return SimulationSpec(**base)

    def test_crash_wipe_rejoin_run_is_clean(self):
        result = run_simulation(self._spec())
        assert result.failed_operations == 0
        assert result.model_mismatches == 0
        assert result.rejoin_completed_at >= 450
        assert result.join_audit is not None
        assert result.join_audit["violations"] == 0
        assert result.audit_report.ok
        assert result.metrics.get("repl.joins", 0) == 1
        assert result.metrics.get("repl.antientropy.sweeps", 0) > 0

    def test_named_replica_is_the_one_cycled(self):
        result = run_simulation(self._spec(rejoin_replica="B"))
        assert result.failed_operations == 0
        assert result.rejoin_completed_at >= 450
        assert result.join_audit["violations"] == 0

    def test_unknown_replica_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(self._spec(rejoin_replica="Z", operations=10))

    def test_lifecycle_knobs_reject_sharding(self):
        with pytest.raises(ValueError):
            run_simulation(self._spec(shards=2))


class TestServiceRejoinVerb:
    def test_rejoin_verb_over_real_sockets(self):
        from repro.service.client import DirectoryClient
        from repro.service.server import DirectoryService
        from repro.shard.sharded import ShardedDirectory

        spec = ClusterSpec(config="3-2-2", seed=4, transport="asyncio")
        with ShardedDirectory.create(spec, shards=2, shard_map="hash") as d:
            with DirectoryService(d).start() as service:
                with DirectoryClient(port=service.port) as client:
                    rng = random.Random(0)
                    for i in range(40):
                        client.set(f"k{i}", str(rng.randint(0, 999)))
                    cluster = d.clusters[1]
                    victim = sorted(cluster.representatives)[-1]
                    cluster.crash(victim)
                    wipe_replica(cluster, victim)
                    for i in range(40, 80):
                        client.set(f"k{i}", str(i))
                    assert client.rejoin(victim, shard=1) == "UP"
                    assert cluster.suite.membership.all_up
                    for i in range(40, 80):
                        assert client.get(f"k{i}") == str(i)

    def test_rejoin_verb_rejects_unknown_targets(self):
        from repro.service.client import DirectoryClient
        from repro.service.server import DirectoryService
        from repro.shard.sharded import ShardedDirectory

        spec = ClusterSpec(config="3-2-2", seed=4, transport="asyncio")
        with ShardedDirectory.create(spec, shards=1, shard_map="hash") as d:
            with DirectoryService(d).start() as service:
                with DirectoryClient(port=service.port) as client:
                    with pytest.raises(Exception) as exc:
                        client.rejoin("nope")
                    assert "unknown replica" in str(exc.value)
                    with pytest.raises(Exception) as exc:
                        client.rejoin("A", shard=7)
                    assert "no shard" in str(exc.value)
