"""End-to-end coverage of the pipelined wire protocol.

The redesign lets one connection keep many requests in flight; the
server must read frames continuously, keep replies strictly in request
order, and fail a mid-burst slot (``-MOVED``, ``-UNAVAILABLE``, logical
errors) without poisoning its neighbours.  These tests drive the real
asyncio front door three ways:

* raw sockets — framing edge cases the client would never emit on its
  own: writes split mid-frame, metadata interleaved per request, EOF
  with replies still owed;
* the redesigned client API — ``pipeline()`` on both the async-first
  client and its blocking wrapper, per-slot results and errors;
* a reshard cutover interleaved with a pipelined burst — the regression
  for the stale-epoch case: only the moved slots chase ``-MOVED``, and
  the burst as a whole still succeeds.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.cluster import ClusterSpec
from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError
from repro.service.client import (
    AsyncDirectoryClient,
    DirectoryClient,
)
from repro.service.protocol import ReplyError, encode_command, read_frame_sync
from repro.service.server import DirectoryService
from repro.shard.maps import RangeShardMap
from repro.shard.sharded import ShardedDirectory


@pytest.fixture()
def service():
    spec = ClusterSpec(
        config="3-2-2", seed=17, transport="asyncio", fanout="parallel"
    )
    with ShardedDirectory.create(
        spec, shards=2, shard_map=RangeShardMap(["m"])
    ) as d:
        with DirectoryService(d).start() as svc:
            yield svc


def _connect(service):
    sock = socket.create_connection((service.host, service.port))
    return sock, sock.makefile("rb")


class TestRawFraming:
    def test_burst_replies_in_request_order(self, service):
        sock, reader = _connect(service)
        try:
            burst = b"".join(
                encode_command("SET", f"k{i}", f"v{i}") for i in range(20)
            ) + b"".join(encode_command("GET", f"k{i}") for i in range(20))
            sock.sendall(burst)
            for _ in range(20):
                assert read_frame_sync(reader) == "OK"
            for i in range(20):
                assert read_frame_sync(reader) == f"v{i}"
        finally:
            sock.close()

    def test_partial_writes_split_mid_frame(self, service):
        """The reader must tolerate frames arriving one byte at a time
        and across arbitrary chunk boundaries — TCP guarantees nothing
        about write/read alignment."""
        sock, reader = _connect(service)
        try:
            burst = b"".join(
                encode_command("SET", f"p{i}", f"w{i}") for i in range(6)
            )
            # Drip the first two frames byte by byte...
            split = len(encode_command("SET", "p0", "w0")) * 2
            for i in range(split):
                sock.sendall(burst[i : i + 1])
            # ...then the rest in chunks that straddle frame boundaries.
            rest = burst[split:]
            for start in range(0, len(rest), 7):
                sock.sendall(rest[start : start + 7])
            for _ in range(6):
                assert read_frame_sync(reader) == "OK"
            sock.sendall(encode_command("GET", "p5"))
            assert read_frame_sync(reader) == "w5"
        finally:
            sock.close()

    def test_interleaved_trace_and_epoch_metadata(self, service):
        """Per-request ``@trace=`` / ``@epoch=`` stamps must not shift
        positional reply alignment: only the requests that stamped an
        epoch get an epoch-stamped reply."""
        sock, reader = _connect(service)
        try:
            sock.sendall(
                encode_command("SET", "ma", "1", "@trace=t-0")
                + encode_command("SET", "mb", "2", "@epoch=0")
                + encode_command("GET", "ma", "@trace=t-1", "@epoch=0")
                + encode_command("GET", "mb")
            )
            assert read_frame_sync(reader) == "OK"  # traced, unstamped
            assert read_frame_sync(reader) == "OK @epoch=0"
            # A bulk GET reply has no room for metadata: value only.
            assert read_frame_sync(reader) == "1"
            assert read_frame_sync(reader) == "2"
        finally:
            sock.close()

    def test_eof_mid_pipeline_flushes_owed_replies(self, service):
        """Half-closing the write side with replies still owed must not
        drop them: the server finishes the in-flight requests, writes
        every reply, then closes."""
        sock, reader = _connect(service)
        try:
            n = 12
            sock.sendall(
                b"".join(
                    encode_command("SET", f"e{i}", f"x{i}") for i in range(n)
                )
            )
            sock.shutdown(socket.SHUT_WR)
            for _ in range(n):
                assert read_frame_sync(reader) == "OK"
            with pytest.raises(ConnectionError):
                read_frame_sync(reader)
        finally:
            sock.close()
        # The writes all committed despite the early EOF.
        with DirectoryClient(service.host, service.port) as c:
            for i in range(n):
                assert c.get(f"e{i}") == f"x{i}"


class TestClientPipeline:
    def test_set_then_get_same_key_orders(self, service):
        with DirectoryClient(service.host, service.port) as c:
            with c.pipeline() as pipe:
                first = pipe.set("k", "v1")
                read1 = pipe.get("k")
                pipe.set("k", "v2")
                read2 = pipe.get("k")
            assert first.result() is None
            assert read1.result() == "v1"
            assert read2.result() == "v2"

    def test_per_slot_errors_stay_in_their_slot(self, service):
        with DirectoryClient(service.host, service.port) as c:
            c.insert("taken", "old")
            with c.pipeline() as pipe:
                bad = pipe.insert("taken", "new")
                good = pipe.insert("fresh", "yes")
                miss = pipe.update("ghost", "no")
                read = pipe.get("taken")
            assert isinstance(bad.error, KeyAlreadyPresentError)
            assert good.result() is None
            assert isinstance(miss.error, KeyNotPresentError)
            assert read.result() == "old"  # the failed insert changed nothing
            with pytest.raises(KeyAlreadyPresentError):
                bad.result()

    def test_result_before_flush_raises(self, service):
        with DirectoryClient(service.host, service.port) as c:
            pipe = c.pipeline()
            handle = pipe.get("k")
            assert not handle.done
            with pytest.raises(RuntimeError):
                handle.result()
            pipe.flush()
            assert handle.done

    def test_pipeline_reusable_after_flush(self, service):
        with DirectoryClient(service.host, service.port) as c:
            with c.pipeline() as pipe:
                pipe.set("r", "1")
                results = pipe.flush()
                assert len(results) == 1 and results[0].ok
                again = pipe.get("r")
            assert again.result() == "1"

    def test_async_client_pipeline(self, service):
        async def drive():
            async with await AsyncDirectoryClient.connect(
                service.host, service.port
            ) as c:
                async with c.pipeline() as pipe:
                    pipe.set("a", "1")
                    read = pipe.get("a")
                    absent = pipe.get("nope")
                return read.result(), absent.result()

        assert asyncio.new_event_loop().run_until_complete(drive()) == (
            "1",
            None,
        )


class TestMovedMidBurst:
    """Satellite regression: reshard cutover interleaved with a burst."""

    def test_moved_slot_fails_alone_and_burst_recovers(self, service):
        with DirectoryClient(service.host, service.port) as fresh:
            for i in range(16):
                fresh.set(f"key{i:02d}", f"v{i}")
            stale = DirectoryClient(service.host, service.port)
            try:
                assert stale.get("key00") == "v0"  # caches epoch 0
                assert stale.epoch == 0
                # Queue a burst spanning both sides of the cut, then
                # reshard *before* the flush: the burst goes out with
                # the stale epoch stamped.
                pipe = stale.pipeline()
                handles = [pipe.get(f"key{i:02d}") for i in range(16)]
                extra = pipe.set("key09", "patched")
                fresh.reshard("key08")  # key08.. move to a new shard
                pipe.flush()
                # Every slot resolved — moved ones chased -MOVED on
                # their own, unmoved ones were answered first try.
                for i, handle in enumerate(handles):
                    assert handle.result() == f"v{i}", i
                assert extra.result() is None
                assert stale.epoch == 1  # refreshed mid-burst
                assert stale.get("key09") == "patched"
            finally:
                stale.close()

    def test_raw_stale_epoch_sees_moved_only_for_moved_keys(self, service):
        with DirectoryClient(service.host, service.port) as admin:
            admin.set("aaa", "left")
            admin.set("zzz", "right")
            admin.reshard("q")  # epoch 0 -> 1; keys >= "q" move
        sock, reader = _connect(service)
        try:
            sock.sendall(
                encode_command("GET", "aaa", "@epoch=0")
                + encode_command("GET", "zzz", "@epoch=0")
                + encode_command("GET", "aaa", "@epoch=1")
            )
            # Bulk replies carry no epoch stamp; the stale slot alone
            # fails, and the connection keeps serving afterwards.
            assert read_frame_sync(reader) == "left"
            moved = read_frame_sync(reader)
            assert isinstance(moved, ReplyError) and moved.code == "MOVED"
            assert read_frame_sync(reader) == "left"
        finally:
            sock.close()
