"""Integration tests: real concurrent transactions against the cluster.

The paper's concurrency claim, executed rather than simulated: multiple
threads run genuine suite operations simultaneously; range locks abort
conflicting transactions (retried by the harness); and afterwards the
directory must be exactly the union of what the clients committed.
"""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.sim.threads import ThreadedClients


class TestPartitionedClients:
    """Each client owns a key interval: exact final-state checking."""

    def test_final_state_equals_union_of_models(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, locking=True))
        harness = ThreadedClients(
            cluster, n_clients=4, ops_per_client=60, seed=6
        )
        result = harness.run()
        result.raise_errors()
        assert result.committed == 4 * 60
        assert all(r.semantic_rejections == 0 for r in result.reports)
        assert cluster.suite.authoritative_state() == result.merged_model()
        cluster.check_invariants()

    def test_lock_tables_drain(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7, locking=True))
        ThreadedClients(cluster, n_clients=3, ops_per_client=40, seed=8).run()
        for rep in cluster.representatives.values():
            assert rep.locks.is_idle()

    def test_cross_partition_lock_traffic_occurs(self):
        # Deletes read-lock across gap boundaries into neighbors'
        # territory, so some conflicts are expected even with disjoint
        # ownership (this is what makes the test non-trivial).
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=9, locking=True))
        result = ThreadedClients(
            cluster, n_clients=6, ops_per_client=80, seed=10
        ).run()
        result.raise_errors()
        assert cluster.suite.authoritative_state() == result.merged_model()
        # Not asserted > 0 (scheduling-dependent), but record it happens
        # in practice more often than never across the suite of runs.

    def test_btree_store_under_concurrency(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", store="btree", seed=11, locking=True))
        result = ThreadedClients(
            cluster, n_clients=4, ops_per_client=50, seed=12
        ).run()
        result.raise_errors()
        assert cluster.suite.authoritative_state() == result.merged_model()
        cluster.check_invariants()


class TestContendedClients:
    """All clients share one key space: rejections are legitimate."""

    def test_shared_keyspace_stays_coherent(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=13, locking=True))
        result = ThreadedClients(
            cluster,
            n_clients=4,
            ops_per_client=60,
            key_partitions=False,
            seed=14,
        ).run()
        result.raise_errors()
        cluster.check_invariants()
        for rep in cluster.representatives.values():
            assert rep.locks.is_idle()
        # Every present key's value was committed by some client.
        state = cluster.suite.authoritative_state()
        committed_values = set()
        for report in result.reports:
            committed_values.update(report.model.values())
        # (Values may also have been overwritten by clients whose model
        # later dropped them; presence in *some* model is not required,
        # but the structural coherence above plus clean lock drain is.)
        assert all(isinstance(k, float) for k in state)


class TestHarnessValidation:
    def test_requires_locking(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=15, locking=False))
        with pytest.raises(ValueError):
            ThreadedClients(cluster)
