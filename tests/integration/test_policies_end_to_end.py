"""End-to-end tests for sticky and locality quorum policies (section 5)."""

import random

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.config import SuiteConfig
from repro.core.quorum import LocalityQuorumPolicy, StickyQuorumPolicy
from repro.net.network import site_latency
from repro.sim.driver import SimulationSpec, run_simulation


class TestStickyQuorums:
    def test_sticky_writes_leave_no_ghosts(self):
        """With a fixed write quorum, deletes never leave ghosts behind
        on quorum members, so coalesce overhead collapses — section 5's
        "coalescing during deletions will not be costly"."""
        spec = SimulationSpec(
            config="3-2-2",
            directory_size=60,
            operations=1500,
            seed=5,
            quorum_policy=StickyQuorumPolicy(switch_prob=0.0),
        )
        sticky = run_simulation(spec)
        random_spec = SimulationSpec(
            config="3-2-2", directory_size=60, operations=1500, seed=5
        )
        random_run = run_simulation(random_spec)
        sticky_ghosts = sticky.delete_stats.deletions_while_coalescing.avg
        random_ghosts = random_run.delete_stats.deletions_while_coalescing.avg
        assert sticky_ghosts < random_ghosts * 0.25
        assert sticky.delete_stats.insertions_while_coalescing.avg < 0.05

    def test_sticky_behaves_correctly(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6, quorum_policy=StickyQuorumPolicy()))
        suite = cluster.suite
        for i in range(30):
            suite.insert(i, i)
        for i in range(0, 30, 2):
            suite.delete(i)
        for i in range(30):
            present, value = suite.lookup(i)
            assert present == (i % 2 == 1)

    def test_sticky_adapts_to_failure(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7, quorum_policy=StickyQuorumPolicy()))
        suite = cluster.suite
        suite.insert("k", 1)
        # Crash whichever rep the sticky write quorum used first.
        used = suite.quorum_policy._last["write"][0]
        cluster.crash(used)
        suite.update("k", 2)  # must re-pick and still succeed
        assert suite.lookup("k") == (True, 2)


class TestLocalityQuorums:
    """The Figure 16 setup: A1, A2 local to type-A clients; B1, B2 remote."""

    def _cluster(self):
        config = SuiteConfig(
            votes={"A1": 1, "A2": 1, "B1": 1, "B2": 1},
            read_quorum=2,
            write_quorum=3,
        )
        sites = {
            "client": "site-A",  # the client lives at site A (Figure 16)
            "node-A1": "site-A",
            "node-A2": "site-A",
            "node-B1": "site-B",
            "node-B2": "site-B",
        }
        return DirectoryCluster.create(ClusterSpec(config=config, seed=8, quorum_policy=LocalityQuorumPolicy(local=["A1", "A2"]), latency=site_latency(sites, local=1.0, remote=25.0)))

    def test_reads_stay_local(self):
        cluster = self._cluster()
        suite = cluster.suite
        suite.insert("k", 1)
        cluster.network.stats.reset()
        t0 = cluster.network.clock.now()
        for _ in range(20):
            suite.lookup("k")
        elapsed = cluster.network.clock.now() - t0
        rounds = cluster.network.stats.rpc_rounds
        # Every RPC round (quorum reads + commit protocol) stayed local:
        # elapsed is exactly rounds x 2 ticks; one remote hop would add 48.
        assert elapsed <= rounds * 2 * 1.0 + 1e-9

    def test_writes_balance_across_remote_reps(self):
        cluster = self._cluster()
        suite = cluster.suite
        for i in range(40):
            suite.insert(i, i)
        b1 = cluster.representative("B1").entry_count()
        b2 = cluster.representative("B2").entry_count()
        # "the non-local write ... is evenly distributed among the remote
        # representatives"
        assert abs(b1 - b2) <= 2
        assert b1 + b2 == 40  # each insert hit exactly one remote rep

    def test_locality_cluster_correct(self):
        cluster = self._cluster()
        suite = cluster.suite
        rng = random.Random(9)
        model = {}
        for i in range(200):
            k = rng.randint(0, 25)
            if k in model and rng.random() < 0.5:
                suite.delete(k)
                del model[k]
            elif k not in model:
                suite.insert(k, i)
                model[k] = i
            else:
                suite.update(k, i)
                model[k] = i
        assert suite.authoritative_state() == model
