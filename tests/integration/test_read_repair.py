"""Integration tests for the read-repair extension."""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.keys import wrap
from tests.integration.test_paper_figures import FixedQuorumPolicy


class TestReadRepair:
    def test_repair_copies_entry_to_stale_member(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1, read_repair=True))
        suite = cluster.suite
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["A", "B"])
        suite.insert("k", "v")  # C never saw it
        assert not cluster.representative("C").contains(wrap("k"))
        # A lookup whose read quorum includes C repairs it.
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "C"])
        assert suite.lookup("k") == (True, "v")
        assert cluster.representative("C").contains(wrap("k"))
        assert suite.repairs_performed == 1

    def test_repair_preserves_version(self):
        # Repair copies current data at its current version — it must not
        # invent a higher one.
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=2, read_repair=True))
        suite = cluster.suite
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["A", "B"])
        suite.insert("k", "v")
        version_on_a = cluster.representative("A").store.lookup(wrap("k")).version
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "C"])
        suite.lookup("k")
        assert (
            cluster.representative("C").store.lookup(wrap("k")).version
            == version_on_a
        )

    def test_no_repair_when_disabled(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3, read_repair=False))
        suite = cluster.suite
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["A", "B"])
        suite.insert("k", "v")
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "C"])
        suite.lookup("k")
        assert not cluster.representative("C").contains(wrap("k"))
        assert suite.repairs_performed == 0

    def test_repair_does_not_resurrect_deleted_keys(self):
        # A ghost's reply loses the vote; repair must not copy the ghost.
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=4, read_repair=True))
        suite = cluster.suite
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["A", "B"])
        suite.insert("k", "v")
        suite.quorum_policy = FixedQuorumPolicy(read=["A", "B"], write=["B", "C"])
        suite.delete("k")  # ghost remains on A
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            suite.quorum_policy = FixedQuorumPolicy(read=quorum)
            assert suite.lookup("k") == (False, None)
        # The ghost on A was never "repaired" onto anyone.
        assert not cluster.representative("B").contains(wrap("k"))

    def test_repair_with_model_check(self):
        from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, read_repair=True))
        suite = cluster.suite
        model = {}
        rng = random.Random(6)
        for i in range(500):
            k = rng.randint(0, 30)
            if k in model and rng.random() < 0.5:
                suite.delete(k)
                del model[k]
            elif k not in model:
                suite.insert(k, i)
                model[k] = i
            else:
                suite.update(k, i)
                model[k] = i
            if rng.random() < 0.3:
                probe = rng.randint(0, 30)
                present, value = suite.lookup(probe)
                assert present == (probe in model)
        assert suite.authoritative_state() == model
        cluster.check_invariants()

    def test_repair_raises_copy_density(self):
        from repro.sim.driver import SimulationSpec, run_simulation

        base = run_simulation(
            SimulationSpec(
                config="3-2-2", directory_size=80, operations=1500, seed=7
            )
        )
        repaired = run_simulation(
            SimulationSpec(
                config="3-2-2",
                directory_size=80,
                operations=1500,
                seed=7,
                read_repair=True,
            )
        )
        # Repair spreads entries to more replicas, so deletes find their
        # real predecessor/successor already present more often.
        assert (
            repaired.delete_stats.insertions_while_coalescing.avg
            < base.delete_stats.insertions_while_coalescing.avg
        )
