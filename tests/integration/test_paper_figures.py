"""Integration tests reproducing the paper's worked examples.

* Figures 1–5: the 3-2-2 suite with entries "a", "c"; inserting "b" into
  A and B; how gap versions disambiguate the lookup that the naive scheme
  gets wrong; deleting "b" by coalescing.
* Figures 10–11: ghosts — deleting "a" when its real successor "bb" is
  missing from one write-quorum member and a ghost "b" sits in the range;
  the delete copies "bb" in and the coalesce eliminates the ghost.
"""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.config import SuiteConfig
from repro.core.keys import LOW, wrap
from repro.core.quorum import QuorumPolicy


class FixedQuorumPolicy(QuorumPolicy):
    """Deterministic quorums for scripting the paper's scenarios."""

    def __init__(self, read=None, write=None):
        self.read = read
        self.write = write

    def select(self, kind, available, config, rng):
        fixed = self.read if kind == "read" else self.write
        assert fixed is not None, f"no fixed {kind} quorum set"
        missing = [n for n in fixed if n not in available]
        assert not missing, f"scripted quorum members unavailable: {missing}"
        return list(fixed)


@pytest.fixture
def cluster():
    return DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=0))


def set_quorums(cluster, read, write=None):
    cluster.suite.quorum_policy = FixedQuorumPolicy(read=read, write=write)


def rep_keys(cluster, name):
    return [e.key.payload for e in cluster.representative(name).user_entries()]


class TestFigures1Through5:
    def _setup_figure1(self, cluster):
        """All representatives contain "a" and "c" with version 1."""
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        cluster.suite.insert("a", "A-val")
        set_quorums(cluster, read=["B", "C"], write=["B", "C"])
        # Bring "a" to C and "c" everywhere via quorum choices.
        set_quorums(cluster, read=["A", "C"], write=["A", "C"])
        cluster.suite.update("a", "A-val")  # copies a to C (version rises)
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        cluster.suite.insert("c", "C-val")
        set_quorums(cluster, read=["A", "C"], write=["B", "C"])
        cluster.suite.update("c", "C-val")

    def test_insert_b_splits_gap_and_lookup_disambiguates(self, cluster):
        self._setup_figure1(cluster)
        # Figure 4: insert "b" into representatives A and B.
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        cluster.suite.insert("b", "B-val")
        assert "b" in rep_keys(cluster, "A")
        assert "b" in rep_keys(cluster, "B")
        assert "b" not in rep_keys(cluster, "C")
        # The paper's key moment: a read quorum of {A, C} where A says
        # "present with version v" and C says "not present with the gap
        # version" — the higher version (the entry's) wins.
        set_quorums(cluster, read=["A", "C"])
        assert cluster.suite.lookup("b") == (True, "B-val")

    def test_delete_b_coalesces_and_raises_gap_version(self, cluster):
        self._setup_figure1(cluster)
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        cluster.suite.insert("b", "B-val")
        b_version = cluster.representative("A").store.lookup(wrap("b")).version
        # Figure 5: delete "b" using representatives B and C.
        set_quorums(cluster, read=["B", "C"], write=["B", "C"])
        cluster.suite.delete("b")
        # B and C now carry a coalesced gap between "a" and "c" whose
        # version exceeds the deleted entry's version.
        for name in ("B", "C"):
            reply = cluster.representative(name).store.lookup(wrap("b"))
            assert not reply.present
            assert reply.version > b_version
        # A still holds the ghost of "b"...
        assert "b" in rep_keys(cluster, "A")
        # ...but every legal read quorum answers "not present":
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            set_quorums(cluster, read=quorum)
            assert cluster.suite.lookup("b") == (False, None)

    def test_figures_sequence_preserves_a_and_c(self, cluster):
        self._setup_figure1(cluster)
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        cluster.suite.insert("b", "B-val")
        set_quorums(cluster, read=["B", "C"], write=["B", "C"])
        cluster.suite.delete("b")
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            set_quorums(cluster, read=quorum)
            assert cluster.suite.lookup("a")[0] is True
            assert cluster.suite.lookup("c")[0] is True
        cluster.check_invariants()


class TestFigures10And11:
    def _setup_figure10(self, cluster):
        """Build the ghost scenario through real suite operations.

        History: "a" reaches every representative; "b" is inserted at
        {A, B} then deleted at {B, C} (leaving a ghost on A); "bb" is then
        inserted at {A, B} (so it is missing from C).
        """
        suite = cluster.suite
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        suite.insert("a", "a-val")
        set_quorums(cluster, read=["A", "B"], write=["A", "C"])
        suite.update("a", "a-val")  # copy "a" onto C
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        suite.insert("b", "b-val")
        set_quorums(cluster, read=["A", "B"], write=["B", "C"])
        suite.delete("b")
        set_quorums(cluster, read=["B", "C"], write=["A", "B"])
        suite.insert("bb", "bb-val")

    def test_figure10_state(self, cluster):
        self._setup_figure10(cluster)
        assert rep_keys(cluster, "A") == ["a", "b", "bb"]  # ghost "b" on A
        assert rep_keys(cluster, "B") == ["a", "bb"]
        assert rep_keys(cluster, "C") == ["a"]  # no "bb" on C
        # Despite the ghost, the suite is coherent:
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            set_quorums(cluster, read=quorum)
            assert cluster.suite.lookup("b") == (False, None)
            assert cluster.suite.lookup("bb") == (True, "bb-val")

    def test_figure11_delete_a_copies_bb_and_kills_ghost(self, cluster):
        self._setup_figure10(cluster)
        # Delete "a" from representatives A and C (the paper's choice).
        set_quorums(cluster, read=["A", "C"], write=["A", "C"])
        cluster.suite.delete("a")
        # The real successor "bb" was copied onto C...
        assert "bb" in rep_keys(cluster, "C")
        # ...and the coalesce eliminated the ghost of "b" from A.
        assert rep_keys(cluster, "A") == ["bb"]
        # The delete's bookkeeping saw the extra work:
        stats = cluster.suite.delete_stats
        assert stats.insertions_while_coalescing.n >= 1
        assert stats.insertions_while_coalescing.max >= 1  # bb copied
        assert stats.deletions_while_coalescing.max >= 1  # ghost b removed
        cluster.check_invariants()

    def test_figure11_suite_semantics_after_delete(self, cluster):
        self._setup_figure10(cluster)
        set_quorums(cluster, read=["A", "C"], write=["A", "C"])
        cluster.suite.delete("a")
        for quorum in (["A", "B"], ["A", "C"], ["B", "C"]):
            set_quorums(cluster, read=quorum)
            assert cluster.suite.lookup("a") == (False, None)
            assert cluster.suite.lookup("b") == (False, None)
            assert cluster.suite.lookup("bb") == (True, "bb-val")

    def test_real_successor_search_skips_ghost(self, cluster):
        self._setup_figure10(cluster)
        suite = cluster.suite
        set_quorums(cluster, read=["A", "C"], write=["A", "C"])
        txn = suite.txn_manager.begin()
        succ = suite._real_neighbor(txn, wrap("a"), "succ")
        suite.txn_manager.abort(txn)
        # The ghost "b" (visible on A) is skipped; "bb" is the real one.
        assert succ.key == wrap("bb")
        # The accumulated gap version bounds the stale data in the range.
        assert succ.max_gap_version >= 2

    def test_real_predecessor_of_first_entry_is_low(self, cluster):
        self._setup_figure10(cluster)
        suite = cluster.suite
        set_quorums(cluster, read=["A", "B"], write=["A", "B"])
        txn = suite.txn_manager.begin()
        pred = suite._real_neighbor(txn, wrap("a"), "pred")
        suite.txn_manager.abort(txn)
        assert pred.key is LOW or pred.key.is_low
