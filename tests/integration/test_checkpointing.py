"""Integration tests: checkpointing under a live workload.

Checkpoints must be pure optimizations — invisible to semantics, visible
only as bounded log length and unchanged recovery results.
"""

import random

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.storage.snapshot import EveryNCommits, LogSizeBound


def churn(cluster, n_ops, seed):
    suite = cluster.suite
    rng = random.Random(seed)
    model = {}
    for i in range(n_ops):
        k = rng.randint(0, 25)
        if k in model and rng.random() < 0.5:
            suite.delete(k)
            del model[k]
        elif k not in model:
            suite.insert(k, i)
            model[k] = i
        else:
            suite.update(k, i)
            model[k] = i
    return model


class TestCheckpointingUnderLoad:
    def test_logs_stay_bounded(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1, checkpoint_policy=LogSizeBound(60)))
        churn(cluster, 400, seed=2)
        for rep in cluster.representatives.values():
            # Bound + at most one burst of records between checkpoints.
            assert len(rep.wal) < 150

    def test_unbounded_without_policy(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        churn(cluster, 400, seed=2)
        assert any(
            len(rep.wal) > 300 for rep in cluster.representatives.values()
        )

    def test_semantics_identical_with_and_without(self):
        plain = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3))
        checkpointed = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3, checkpoint_policy=EveryNCommits(20)))
        model_a = churn(plain, 300, seed=4)
        model_b = churn(checkpointed, 300, seed=4)
        assert model_a == model_b
        assert (
            plain.suite.authoritative_state()
            == checkpointed.suite.authoritative_state()
        )

    def test_recovery_after_checkpointed_history(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, checkpoint_policy=EveryNCommits(10)))
        model = churn(cluster, 300, seed=6)
        for name in cluster.representatives:
            before = cluster.representative(name).store.snapshot()
            cluster.crash(name)
            cluster.recover(name)
            assert cluster.representative(name).store.snapshot() == before
        assert cluster.suite.authoritative_state() == model

    def test_recovery_is_idempotent(self):
        # Crash/recover the same replica repeatedly: every recovery must
        # land on the same bytes (replay is a pure function of the log).
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=8, checkpoint_policy=EveryNCommits(25)))
        churn(cluster, 200, seed=9)
        rep = cluster.representative("B")
        before = rep.store.snapshot()
        for _ in range(3):
            cluster.crash("B")
            cluster.recover("B")
            assert rep.store.snapshot() == before

    def test_recovery_bit_identical_to_continuous_execution(self):
        # Two identical workloads; one cluster additionally crashes and
        # recovers every replica afterwards.  Each recovered store must
        # be byte-for-byte the continuous run's store — snapshot restore
        # plus tail replay loses nothing and invents nothing.
        continuous = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=10, checkpoint_policy=EveryNCommits(20)))
        recovered = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=10, checkpoint_policy=EveryNCommits(20)))
        churn(continuous, 250, seed=11)
        churn(recovered, 250, seed=11)
        for name in recovered.representatives:
            recovered.crash(name)
            recovered.recover(name)
        for name in continuous.representatives:
            assert (
                recovered.representative(name).store.snapshot()
                == continuous.representative(name).store.snapshot()
            )
        continuous.check_invariants()
        recovered.check_invariants()

    def test_crash_between_checkpoints_replays_tail(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7, checkpoint_policy=EveryNCommits(50)))
        suite = cluster.suite
        for i in range(60):  # one checkpoint plus a tail
            suite.insert(i, i)
        rep = cluster.representative("A")
        before = rep.store.snapshot()
        cluster.crash("A")
        cluster.recover("A")
        assert rep.store.snapshot() == before
