"""Integration tests: checkpointing under a live workload.

Checkpoints must be pure optimizations — invisible to semantics, visible
only as bounded log length and unchanged recovery results.
"""

import random

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.storage.snapshot import EveryNCommits, LogSizeBound


def churn(cluster, n_ops, seed):
    suite = cluster.suite
    rng = random.Random(seed)
    model = {}
    for i in range(n_ops):
        k = rng.randint(0, 25)
        if k in model and rng.random() < 0.5:
            suite.delete(k)
            del model[k]
        elif k not in model:
            suite.insert(k, i)
            model[k] = i
        else:
            suite.update(k, i)
            model[k] = i
    return model


class TestCheckpointingUnderLoad:
    def test_logs_stay_bounded(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1, checkpoint_policy=LogSizeBound(60)))
        churn(cluster, 400, seed=2)
        for rep in cluster.representatives.values():
            # Bound + at most one burst of records between checkpoints.
            assert len(rep.wal) < 150

    def test_unbounded_without_policy(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        churn(cluster, 400, seed=2)
        assert any(
            len(rep.wal) > 300 for rep in cluster.representatives.values()
        )

    def test_semantics_identical_with_and_without(self):
        plain = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3))
        checkpointed = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3, checkpoint_policy=EveryNCommits(20)))
        model_a = churn(plain, 300, seed=4)
        model_b = churn(checkpointed, 300, seed=4)
        assert model_a == model_b
        assert (
            plain.suite.authoritative_state()
            == checkpointed.suite.authoritative_state()
        )

    def test_recovery_after_checkpointed_history(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5, checkpoint_policy=EveryNCommits(10)))
        model = churn(cluster, 300, seed=6)
        for name in cluster.representatives:
            before = cluster.representative(name).store.snapshot()
            cluster.crash(name)
            cluster.recover(name)
            assert cluster.representative(name).store.snapshot() == before
        assert cluster.suite.authoritative_state() == model

    def test_crash_between_checkpoints_replays_tail(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7, checkpoint_policy=EveryNCommits(50)))
        suite = cluster.suite
        for i in range(60):  # one checkpoint plus a tail
            suite.insert(i, i)
        rep = cluster.representative("A")
        before = rep.store.snapshot()
        cluster.crash("A")
        cluster.recover("A")
        assert rep.store.snapshot() == before
