"""End-to-end coverage of the service's live-telemetry plane.

Boots the real asyncio service (sockets, shard executors, ring tracers)
and drives it through the blocking client: the ``STATS``/``SLOW``/
``METRICS`` verbs, trace-id propagation and adoption, the windowed-rate
consistency the acceptance gate relies on, and the wire-compatibility
guarantees (old-format clients, malformed metadata) the protocol
promises.
"""

from __future__ import annotations

import socket

import pytest

from repro.cluster import ClusterSpec
from repro.obs.analyze import PHASES, _credit_phases, iter_op_spans
from repro.obs.spans import Span
from repro.service import protocol
from repro.service.client import DirectoryClient
from repro.service.server import DirectoryService
from repro.shard.sharded import ShardedDirectory


@pytest.fixture(scope="module")
def service():
    spec = ClusterSpec(config="3-2-2", seed=11, transport="asyncio")
    with ShardedDirectory.create(spec, shards=2, shard_map="hash") as d:
        with DirectoryService(d).start() as svc:
            yield svc


@pytest.fixture()
def client(service):
    with DirectoryClient(service.host, service.port) as c:
        yield c


def drive(client, n=30):
    for i in range(n):
        client.set(f"k{i}", "v")
        client.get(f"k{i % 5}")


class TestAdminVerbs:
    def test_stats_shape(self, service, client):
        drive(client)
        stats = client.stats(60)
        assert stats["shards"] == 2
        assert set(stats["per_shard"]) == {"s0", "s1"}
        assert stats["window_seconds"] > 0
        assert stats["ops_per_s"] > 0
        for row in stats["per_shard"].values():
            assert set(row) >= {
                "ops_per_s", "routed", "err_per_s",
                "latency", "hot_keys", "membership",
            }
            assert set(row["membership"].values()) <= {
                "up", "joining", "catching_up"
            }
        assert "service.front.ops" in stats["windows"]

    def test_stats_routed_matches_directory(self, service, client):
        before = sum(r["routed"] for r in client.stats()["per_shard"].values())
        drive(client, n=10)  # 20 keyed ops
        after = sum(r["routed"] for r in client.stats()["per_shard"].values())
        assert after - before == 20
        assert after == sum(service.directory.routed)

    def test_stats_rates_consistent_with_op_count(self, service, client):
        base = client.stats()  # sample the window start
        drive(client, n=25)  # 50 keyed ops
        stats = client.stats(0.0)  # rate since the previous sample
        counted = stats["ops_per_s"] * stats["window_seconds"]
        assert counted == pytest.approx(50, rel=0.02)

    def test_hot_key_surfaces_in_owning_shard(self, service, client):
        for _ in range(60):
            client.get("hot-key")
        index = service.directory.shard_for("hot-key")
        stats = client.stats()
        top = stats["per_shard"][f"s{index}"]["hot_keys"]
        assert top and top[0][0] == "hot-key"

    def test_metrics_snapshot(self, client):
        drive(client, n=3)
        snap = client.metrics()
        assert snap["service.front.ops"] > 0
        assert "live.ops.recorded" in snap
        assert "shard.routed" in snap

    def test_stats_window_argument_validated(self, client):
        with pytest.raises(protocol.ReplyError):
            client._request("STATS", "not-a-number")
        with pytest.raises(protocol.ReplyError):
            client._request("SLOW", "0")


class TestSlowVerb:
    def test_span_trees_tile_exactly(self, client):
        drive(client)
        entries = client.slow(8)
        assert entries
        checked = 0
        for entry in entries:
            assert entry["duration"] > 0
            root = Span.from_dict(entry["span"])
            assert root.name == f"service:{entry['verb']}"
            for op in iter_op_spans([root]):
                sums = dict.fromkeys(PHASES, 0.0)
                _credit_phases(op, sums)
                assert sum(sums.values()) == pytest.approx(
                    op.duration, abs=1e-12
                )
                checked += 1
        assert checked > 0

    def test_slow_is_ranked_and_bounded(self, client):
        drive(client)
        entries = client.slow(5)
        assert len(entries) <= 5
        durations = [e["duration"] for e in entries]
        assert durations == sorted(durations, reverse=True)


class TestTracePropagation:
    def test_client_trace_id_adopted_on_root_span(self, service, client):
        client.set("traced-key", "v")
        stamped = client.last_trace
        assert stamped is not None
        index = service.directory.shard_for("traced-key")
        roots = service.telemetry.shards[index].tracer.finished_roots()
        adopted = [s for s in roots if s.attrs.get("trace") == stamped]
        assert len(adopted) == 1
        assert adopted[0].name == "service:SET"
        assert adopted[0].attrs["key"] == "traced-key"

    def test_slow_entries_carry_trace_ids(self, client):
        client.set("slow-traced", "v")
        stamped = client.last_trace
        # Ask for more entries than the per-shard rings hold, so the
        # just-recorded op is present regardless of its rank.
        entries = client.slow(1024)
        assert any(e["trace"] == stamped for e in entries)


class TestWireCompatibility:
    """Old-format and malformed frames must keep working (satellite #6)."""

    def _raw(self, service, payload: bytes) -> bytes:
        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            stream = sock.makefile("rb")
            return protocol.read_frame_sync(stream)

    def test_old_format_client_without_trace_metadata(self, service):
        # A pre-trace client: plain frames, no @-elements, trace=False.
        with DirectoryClient(service.host, service.port, trace=False) as old:
            assert old.last_trace is None
            old.set("compat-key", "1")
            assert old.get("compat-key") == "1"
            assert old.ping()
            assert old.last_trace is None

    @pytest.mark.parametrize(
        "meta",
        [
            "@trace=",  # malformed: empty id
            "@trace=bad id!",  # malformed: illegal characters
            "@unknown=field",  # unknown metadata field
            "@",  # bare marker
            "@trace",  # missing value separator
        ],
    )
    def test_malformed_or_unknown_metadata_is_ignored(self, service, meta):
        reply = self._raw(
            service, protocol.encode_command("GET", "compat-key", meta)
        )
        assert not isinstance(reply, protocol.ReplyError), reply

    def test_metadata_never_changes_arity(self, service):
        # Three trailing metadata elements on a 0-arg verb still parse.
        reply = self._raw(
            service,
            protocol.encode_command(
                "PING", "@trace=abc-1", "@unknown=x", "@trace=def-2"
            ),
        )
        assert reply == "PONG"

    def test_split_meta_rightmost_trace_wins(self):
        parts, trace = protocol.split_meta(
            ["GET", "k", "@trace=outer-1", "@trace=inner-2"]
        )
        assert parts == ["GET", "k"]
        assert trace == "inner-2"

    def test_split_meta_leaves_interior_at_args_alone(self):
        # Only *trailing* elements are metadata: an @-ish value in
        # argument position is untouched.
        parts, trace = protocol.split_meta(["SET", "k", "@value"])
        assert parts == ["SET", "k"]  # trailing @value is stripped...
        parts, trace = protocol.split_meta(["SET", "@key", "v"])
        assert parts == ["SET", "@key", "v"]  # ...interior @key is not
        assert trace is None


class TestTopCommand:
    def test_top_once_renders_frame(self, service, capsys):
        from repro.cli import main

        with DirectoryClient(service.host, service.port) as c:
            drive(c, n=10)
        rc = main(
            [
                "top",
                "--host", service.host,
                "--port", str(service.port),
                "--once",
                "--interval", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top" in out
        assert "s0" in out and "s1" in out

    def test_top_connection_refused(self, capsys):
        from repro.cli import main

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        rc = main(["top", "--port", str(free_port), "--once"])
        assert rc == 1
        assert "cannot connect" in capsys.readouterr().out


class TestLiveDisabled:
    def test_admin_verbs_error_but_ops_work(self):
        spec = ClusterSpec(config="1-1-1", seed=3, transport="asyncio")
        with ShardedDirectory.create(spec, shards=1) as d:
            with DirectoryService(d, live=False).start() as svc:
                with DirectoryClient(svc.host, svc.port) as c:
                    c.set("k", "v")
                    assert c.get("k") == "v"
                    with pytest.raises(protocol.ReplyError):
                        c.stats()
