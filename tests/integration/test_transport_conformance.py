"""One behavioural contract, two substrates.

The whole point of the Transport seam is that the paper's algorithm
cannot tell whether its RPCs ride the simulated network or real asyncio
sockets.  This suite runs the same operation/error/chaos sequences over
a cluster built on each transport and demands identical *behaviour*
(answers, error types, quorum availability) — timing, of course,
differs: one substrate is a virtual clock, the other is the wall.

The asyncio half doubles as the loopback integration test for the
service stack: representatives really are socket servers here, every
suite operation really crosses TCP, and the front-door/client pair gets
its own end-to-end pass at the bottom.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import (
    ConfigurationError,
    KeyAlreadyPresentError,
    KeyNotPresentError,
    QuorumUnavailableError,
)
from repro.core.interface import Directory
from repro.net.network import Network, uniform_latency
from repro.net.transport import SimTransport, resolve_transport

TRANSPORTS = ["sim", "asyncio"]


@pytest.fixture(params=TRANSPORTS)
def cluster(request):
    with DirectoryCluster.create(
        ClusterSpec(config="3-2-2", seed=9, transport=request.param)
    ) as c:
        yield c


class TestOperationContract:
    def test_crud_sequence(self, cluster):
        d = cluster.suite
        assert d.size() == 0
        assert d.lookup("a") == (False, None)
        d.insert("a", 1)
        d.insert("b", 2)
        d.insert("c", 3)
        assert d.lookup("b") == (True, 2)
        assert d.size() == 3
        d.update("b", 20)
        assert d.lookup("b") == (True, 20)
        d.delete("a")
        assert d.lookup("a") == (False, None)
        assert d.size() == 2
        # Reinsert after delete: the paper's stale-copy hard case.
        d.insert("a", 10)
        assert d.lookup("a") == (True, 10)

    def test_error_contract(self, cluster):
        d = cluster.suite
        d.insert("k", 1)
        with pytest.raises(KeyAlreadyPresentError):
            d.insert("k", 2)
        with pytest.raises(KeyNotPresentError):
            d.update("missing", 1)
        with pytest.raises(KeyNotPresentError):
            d.delete("missing")
        assert d.lookup("k") == (True, 1)

    def test_replicas_agree_after_churn(self, cluster):
        d = cluster.suite
        for i in range(12):
            d.insert(f"k{i}", i)
        for i in range(0, 12, 3):
            d.delete(f"k{i}")
        for i in range(1, 12, 3):
            d.update(f"k{i}", -i)
        expected = {}
        for i in range(12):
            if i % 3 == 0:
                continue
            expected[f"k{i}"] = -i if i % 3 == 1 else i
        assert d.authoritative_state() == expected


class TestChaosContract:
    def test_single_crash_is_masked(self, cluster):
        d = cluster.suite
        d.insert("x", 1)
        cluster.crash("B")
        d.update("x", 2)  # 2-of-3 quorum still assembles
        assert d.lookup("x") == (True, 2)
        cluster.recover("B")
        assert d.lookup("x") == (True, 2)
        assert d.authoritative_state() == {"x": 2}

    def test_quorum_loss_raises_not_corrupts(self, cluster):
        d = cluster.suite
        d.insert("x", 1)
        cluster.crash("A")
        cluster.crash("B")
        with pytest.raises(QuorumUnavailableError):
            d.update("x", 2)
        cluster.recover("A")
        cluster.recover("B")
        assert d.lookup("x") == (True, 1)
        d.update("x", 2)
        assert d.lookup("x") == (True, 2)

    def test_crashed_replica_catches_up_on_recovery(self, cluster):
        d = cluster.suite
        for i in range(6):
            d.insert(f"k{i}", i)
        cluster.crash("C")
        d.update("k0", 100)
        d.delete("k1")
        cluster.recover("C")
        # Weighted voting needs no explicit anti-entropy: the recovered
        # replica is simply outvoted until writes refresh it.
        assert d.lookup("k0") == (True, 100)
        assert d.lookup("k1") == (False, None)


class TestTransportSurface:
    def test_protocol_surface(self, cluster):
        t = cluster.transport
        node = cluster.suite.placements["A"].node_id
        assert t.is_up(node)
        assert t.reachable("client", node)
        before = t.clock.now()
        cluster.suite.insert("k", 1)
        assert t.clock.now() >= before
        t.crash(node)
        assert not t.is_up(node)
        t.recover(node)
        assert t.is_up(node)
        assert t.reachable("client", node)

    def test_cluster_close_is_idempotent(self, cluster):
        cluster.suite.insert("k", 1)
        cluster.close()
        cluster.close()

    def test_suite_satisfies_directory_protocol(self, cluster):
        assert isinstance(cluster.suite, Directory)


class TestResolution:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_transport("carrier-pigeon", network=None, latency=None)

    def test_asyncio_rejects_simulation_options(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(config="3-2-2", transport="asyncio", latency=uniform_latency())
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                config="3-2-2", transport="asyncio", network=Network()
            )

    def test_instance_passes_through(self):
        net = Network()
        transport = SimTransport(net)
        resolved = resolve_transport(transport, network=None, latency=None)
        assert resolved is transport


class TestServiceLoopback:
    """The front door + client library, over real sockets end to end."""

    def test_client_conformance_and_errors(self):
        from repro.service.client import DirectoryClient
        from repro.service.server import DirectoryService
        from repro.shard.sharded import ShardedDirectory

        spec = ClusterSpec(config="3-2-2", seed=4, transport="asyncio")
        with ShardedDirectory.create(spec, shards=2, shard_map="hash") as d:
            with DirectoryService(d).start() as service:
                with DirectoryClient(port=service.port) as client:
                    assert isinstance(client, Directory)
                    assert client.ping()
                    assert client.shards() == 2
                    client.insert("a", "1")
                    with pytest.raises(KeyAlreadyPresentError):
                        client.insert("a", "2")
                    with pytest.raises(KeyNotPresentError):
                        client.update("zz", "0")
                    client.update("a", "2")
                    assert client.lookup("a") == (True, "2")
                    client.set("b", "3")
                    assert client.get("b") == "3"
                    assert client.remove("b") is True
                    assert client.remove("b") is False
                    assert client.get("b") is None
                    assert client.size() == 1
                    client.delete("a")
                    assert client.size() == 0
                # close is idempotent on the client too
                client.close()
