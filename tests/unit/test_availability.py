"""Unit tests for exact quorum-availability analysis.

Expected values are computed independently (binomial closed forms) so the
subset-enumeration code is checked against a second method.
"""

import math

import pytest

from repro.core.config import SuiteConfig
from repro.sim.availability import (
    analyze,
    best_tradeoff_example,
    quorum_availability,
    sweep,
)


def binomial_at_least(n, k, p):
    """P(at least k of n independent p-up nodes are up)."""
    return sum(
        math.comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k, n + 1)
    )


class TestQuorumAvailability:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_uniform_votes_match_binomial(self, p):
        config = SuiteConfig.from_xyz("5-3-3")
        got = quorum_availability(config, p, 3)
        assert got == pytest.approx(binomial_at_least(5, 3, p))

    def test_single_replica(self):
        config = SuiteConfig.from_xyz("1-1-1")
        assert quorum_availability(config, 0.9, 1) == pytest.approx(0.9)

    def test_write_all_needs_everyone(self):
        config = SuiteConfig.unanimous(4)
        assert quorum_availability(config, 0.9, 4) == pytest.approx(0.9**4)

    def test_perfect_nodes(self):
        config = SuiteConfig.from_xyz("3-2-2")
        assert quorum_availability(config, 1.0, 2) == pytest.approx(1.0)

    def test_dead_nodes(self):
        config = SuiteConfig.from_xyz("3-2-2")
        assert quorum_availability(config, 0.0, 2) == pytest.approx(0.0)

    def test_per_node_probabilities(self):
        config = SuiteConfig.from_xyz("2-1-2")
        # A up w.p. 1.0, B w.p. 0.5: write quorum (both) available 0.5.
        got = quorum_availability(config, {"A": 1.0, "B": 0.5}, 2)
        assert got == pytest.approx(0.5)

    def test_weighted_votes(self):
        config = SuiteConfig(
            votes={"big": 2, "small": 1}, read_quorum=2, write_quorum=2
        )
        # Quorum of 2 votes needs the big replica up (small alone has 1).
        got = quorum_availability(config, 0.9, 2)
        assert got == pytest.approx(0.9)


class TestAnalyze:
    def test_majority_beats_unanimous_writes(self):
        p = 0.9
        unanimous = analyze(SuiteConfig.unanimous(5), p)
        majority = analyze(SuiteConfig.uniform(5, 3, 3), p)
        assert majority.write_availability > unanimous.write_availability
        # And unanimous reads are the easiest possible.
        assert unanimous.read_availability > majority.read_availability

    def test_naive_delete_availability_strictly_worse(self):
        # Needing R+1 live votes is strictly harder than R for p < 1.
        point = analyze(SuiteConfig.from_xyz("3-2-2"), 0.9)
        assert point.naive_delete_availability < point.write_availability

    def test_known_322_values(self):
        point = analyze(SuiteConfig.from_xyz("3-2-2"), 0.9)
        expected_rw = binomial_at_least(3, 2, 0.9)
        assert point.read_availability == pytest.approx(expected_rw)
        assert point.write_availability == pytest.approx(expected_rw)
        assert point.naive_delete_availability == pytest.approx(0.9**3)

    def test_sweep_size(self):
        configs = [SuiteConfig.from_xyz("3-2-2"), SuiteConfig.unanimous(3)]
        points = sweep(configs, [0.5, 0.9])
        assert len(points) == 4

    def test_best_tradeoff_example_shapes(self):
        table = best_tradeoff_example()
        assert len(table) == 4
        for points in table.values():
            assert len(points) == 5

    def test_paper_motivating_gap(self):
        # Five replicas at 90% node availability: unanimous writes vs
        # majority writes differ by ~40 percentage points.
        unanimous = analyze(SuiteConfig.unanimous(5), 0.9)
        majority = analyze(SuiteConfig.uniform(5, 3, 3), 0.9)
        assert unanimous.write_availability == pytest.approx(0.59049)
        assert majority.write_availability > 0.99
