"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_demo(self, capsys):
        code, out = run_cli(capsys, "demo", "--seed", "3")
        assert code == 0
        assert "lookup(alice)" in out
        assert "recovered" in out

    def test_simulate_small(self, capsys):
        code, out = run_cli(
            capsys,
            "simulate", "--config", "3-2-2", "--size", "30",
            "--ops", "300", "--seed", "1",
        )
        assert code == 0
        assert "entries_in_ranges_coalesced" in out
        assert "RPC rounds" in out

    def test_simulate_spans_to_stdout(self, capsys):
        import json

        code, out = run_cli(
            capsys,
            "simulate", "--size", "20", "--ops", "150", "--spans",
        )
        assert code == 0
        assert "Per-operation span summary" in out
        # the JSON-lines dump starts at the header line
        lines = out.splitlines()
        start = next(
            i for i, line in enumerate(lines) if line.startswith('{"format"')
        )
        header = json.loads(lines[start])
        trees = [json.loads(line) for line in lines[start + 1:]]
        assert header["count"] == len(trees) == 150
        # per-op message counts reconcile exactly with the traffic counters
        def messages(tree):
            return tree["attrs"].get("messages", 0) + sum(
                messages(c) for c in tree["children"]
            )

        reported = next(l for l in lines if l.startswith("reconciliation:"))
        total = sum(messages(t) for t in trees)
        assert f"spans carry {total} messages" in reported
        assert f"traffic counted {total}" in reported

    def test_simulate_spans_to_file(self, capsys, tmp_path):
        path = tmp_path / "spans.jsonl"
        code, out = run_cli(
            capsys,
            "simulate", "--size", "10", "--ops", "50", "--spans", str(path),
        )
        assert code == 0
        assert f"span dump written to {path}" in out
        from repro.obs.export import load_spans_file

        spans = load_spans_file(path)
        assert len(spans) == 50

    def test_simulate_with_btree_and_repair(self, capsys):
        code, out = run_cli(
            capsys,
            "simulate", "--size", "20", "--ops", "200",
            "--store", "btree", "--read-repair", "--batch", "3",
        )
        assert code == 0

    def test_simulate_with_skiplist_store(self, capsys):
        # Every registered store factory must be reachable from the CLI;
        # the choices list is derived from the registry, not hand-kept.
        code, out = run_cli(
            capsys,
            "simulate", "--size", "20", "--ops", "150",
            "--store", "skiplist",
        )
        assert code == 0
        assert "RPC rounds" in out

    @pytest.mark.parametrize("mode", ["parallel", "hedged"])
    def test_simulate_fanout_modes(self, capsys, mode):
        code, out = run_cli(
            capsys,
            "simulate", "--size", "20", "--ops", "150",
            "--fanout", mode,
        )
        assert code == 0
        assert "RPC rounds" in out

    def test_unknown_fanout_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--fanout", "sideways"])

    def test_figure14_reduced(self, capsys):
        code, out = run_cli(
            capsys,
            "figure14", "--configs", "1-1-1,3-2-2",
            "--size", "30", "--ops", "300",
        )
        assert code == 0
        assert "3-2-2" in out
        assert "Entries in ranges coalesced" in out

    def test_figure15_reduced(self, capsys):
        code, out = run_cli(
            capsys,
            "figure15", "--sizes", "30,60", "--ops", "400",
        )
        assert code == 0
        assert "30 entries" in out and "60 entries" in out
        assert "Std Dev" in out

    def test_availability(self, capsys):
        code, out = run_cli(capsys, "availability", "--p", "0.9")
        assert code == 0
        assert "5 unanimous" in out
        assert "0.5905" in out  # 0.9^5

    def test_concurrency(self, capsys):
        code, out = run_cli(
            capsys, "concurrency", "--txns", "100", "--clients", "4"
        )
        assert code == 0
        assert "whole" in out and "range" in out

    def test_analytic(self, capsys):
        code, out = run_cli(capsys, "analytic", "--configs", "3-2-2")
        assert code == 0
        assert "1.200" in out

    def test_plan(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--replicas", "5", "--p", "0.9"
        )
        assert code == 0
        assert "most available: 5-3-3" in out
        assert "accesses/op" in out


class TestProfileAuditBench:
    def test_simulate_profile_audit_writes_everything(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        code, out = run_cli(
            capsys,
            "simulate", "--size", "20", "--ops", "200", "--seed", "0",
            "--profile", "--audit", "--metrics", "metrics.json",
            "--bench-json",
        )
        assert code == 0
        assert "Per-operation simulated latency" in out
        assert "Per-phase self time" in out
        assert "p99" in out
        assert "0 violations" in out

        from repro.obs.bench import load_bench

        bench = load_bench(tmp_path / "BENCH_driver.json")
        assert bench["name"] == "driver"
        assert bench["audit"]["violations"] == 0
        assert bench["workload"]["operations"] == 200
        assert bench["messages"]["messages"] > 0
        assert "phases" in bench["latency"]

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["audit.violations"] == 0
        assert "net.traffic" in metrics

    def test_metrics_to_stdout(self, capsys):
        import json

        code, out = run_cli(
            capsys,
            "simulate", "--size", "10", "--ops", "50", "--metrics", "-",
        )
        assert code == 0
        start = out.index("{")
        snapshot = json.loads(out[start : out.rindex("}") + 1])
        assert "suite.ops" in snapshot

    def test_bench_json_custom_path(self, capsys, tmp_path):
        from repro.obs.bench import load_bench

        path = tmp_path / "BENCH_mini.json"
        code, out = run_cli(
            capsys,
            "simulate", "--size", "10", "--ops", "50", "--profile",
            "--bench-json", str(path),
        )
        assert code == 0
        bench = load_bench(path)
        assert bench["name"] == "mini"
        assert bench["audit"] is None  # no --audit on this run

    def test_bench_compare_clean_and_regressed(self, capsys, tmp_path):
        from repro.obs.bench import bench_payload, write_bench

        base = bench_payload(
            name="a",
            workload={},
            messages={"messages": 100},
            latency={},
            created=1.0,
        )
        worse = bench_payload(
            name="b",
            workload={},
            messages={"messages": 150},
            latency={},
            created=2.0,
        )
        base_path = write_bench(base, directory=tmp_path)
        worse_path = write_bench(worse, directory=tmp_path)

        code, out = run_cli(
            capsys, "bench-compare", str(base_path), str(base_path)
        )
        assert code == 0
        assert "no regressions" in out

        code, out = run_cli(
            capsys, "bench-compare", str(base_path), str(worse_path)
        )
        assert code == 1
        assert "messages.messages" in out

        # a generous tolerance waves the same pair through
        code, _ = run_cli(
            capsys,
            "bench-compare", str(base_path), str(worse_path),
            "--tolerance", "0.6",
        )
        assert code == 0
