"""Unit tests for the replica lifecycle layer (:mod:`repro.repl`)."""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import ConfigurationError
from repro.core.keys import HIGH, LOW, wrap
from repro.repl import (
    ReplicaState,
    SuiteMembership,
    divergent_pieces,
    snapshot_pieces,
    wipe_replica,
)
from repro.storage.sorted_store import SortedStore


class TestMembershipMachine:
    def test_starts_all_up(self):
        m = SuiteMembership(["A", "B", "C"])
        assert m.all_up
        assert all(m.can_vote(n) for n in "ABC")
        assert m.non_voting() == []

    def test_join_cycle(self):
        m = SuiteMembership(["A", "B", "C"])
        m.set_state("B", ReplicaState.JOINING)
        assert not m.all_up
        assert not m.can_vote("B")
        assert m.voting(["A", "B", "C"]) == ["A", "C"]
        assert m.non_voting() == ["B"]
        m.set_state("B", ReplicaState.CATCHING_UP)
        assert not m.can_vote("B")
        m.set_state("B", ReplicaState.UP)
        assert m.all_up and m.can_vote("B")

    def test_fallback_to_joining_is_legal(self):
        m = SuiteMembership(["A", "B"])
        m.set_state("B", ReplicaState.JOINING)
        m.set_state("B", ReplicaState.CATCHING_UP)
        m.set_state("B", ReplicaState.JOINING)  # donor lost: re-snapshot
        assert m.state("B") is ReplicaState.JOINING

    def test_illegal_transitions_raise(self):
        m = SuiteMembership(["A", "B"])
        with pytest.raises(ConfigurationError):
            m.set_state("A", ReplicaState.CATCHING_UP)  # UP -> CATCHING_UP
        m.set_state("A", ReplicaState.JOINING)
        with pytest.raises(ConfigurationError):
            m.set_state("A", ReplicaState.UP)  # JOINING -> UP skips catch-up

    def test_same_state_is_a_no_op(self):
        m = SuiteMembership(["A"])
        m.set_state("A", ReplicaState.UP)
        assert m.all_up

    def test_counts_census(self):
        m = SuiteMembership(["A", "B", "C"])
        m.set_state("C", ReplicaState.JOINING)
        assert m.counts() == {"up": 2, "joining": 1, "catching_up": 0}

    def test_empty_membership_rejected(self):
        with pytest.raises(ConfigurationError):
            SuiteMembership([])


def _store(items, coalesce=None):
    store = SortedStore()
    for key, version, value in items:
        store.insert(wrap(key), version, value)
    if coalesce is not None:
        low, high, version = coalesce
        store.coalesce(low, high, version)
    return store


class TestSnapshotPieces:
    def test_entries_precede_gaps(self):
        snap = _store([("b", 1, "B"), ("d", 2, "D")]).snapshot()
        pieces = snapshot_pieces(snap)
        kinds = [p[0] for p in pieces]
        assert kinds == ["entry"] * 4 + ["gap"] * 3  # 2 sentinels included
        # Every gap's bounds are entry keys shipped before it.
        entry_keys = {p[1] for p in pieces if p[0] == "entry"}
        for piece in pieces:
            if piece[0] == "gap":
                assert piece[1] in entry_keys and piece[2] in entry_keys

    def test_tiles_the_whole_keyspace(self):
        snap = _store([("b", 1, "B")]).snapshot()
        gaps = [p for p in snapshot_pieces(snap) if p[0] == "gap"]
        assert len(gaps) == len(snap.gap_versions)


class TestDivergentPieces:
    def test_identical_snapshots_diverge_nowhere(self):
        a = _store([("b", 1, "B"), ("d", 2, "D")]).snapshot()
        b = _store([("b", 1, "B"), ("d", 2, "D")]).snapshot()
        assert divergent_pieces(a, b) == []

    def test_newer_entry_is_shipped(self):
        new = _store([("b", 5, "NEW")]).snapshot()
        old = _store([("b", 1, "OLD")]).snapshot()
        pieces = divergent_pieces(new, old)
        assert pieces == [("entry", wrap("b"), 5, "NEW")]
        # ... and never in the stale direction.
        assert divergent_pieces(old, new) == []

    def test_missing_entry_is_shipped_when_it_beats_the_gap(self):
        src = _store([("b", 3, "B")]).snapshot()
        dst = _store([]).snapshot()  # empty tiling: gap version 0
        pieces = divergent_pieces(src, dst)
        assert ("entry", wrap("b"), 3, "B") in pieces

    def test_dominating_gap_is_shipped(self):
        # Source deleted "b" (gap version 7); target still stores it.
        src = _store([("b", 3, "B")], coalesce=(LOW, HIGH, 7))
        src_snap = src.snapshot()
        dst_snap = _store([("b", 3, "B")]).snapshot()
        pieces = divergent_pieces(src_snap, dst_snap)
        assert [p[0] for p in pieces] == ["gap"]
        assert pieces[0][3] == 7

    def test_ghost_never_propagates(self):
        # Target deleted "b" at version 7; source still holds the ghost
        # entry (version 3).  The covering gap beats it: nothing ships.
        ghost_holder = _store([("b", 3, "B")]).snapshot()
        gap_holder = _store([("b", 3, "B")], coalesce=(LOW, HIGH, 7)).snapshot()
        assert divergent_pieces(ghost_holder, gap_holder) == []


class TestWipeReplica:
    def test_refuses_a_live_replica(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        with pytest.raises(RuntimeError):
            wipe_replica(cluster, "A")

    def test_wipes_log_but_keeps_lsn_counter(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        cluster.suite.insert("k", 1)
        rep = cluster.representative("A")
        high = rep.wal.next_lsn
        assert high > 1
        cluster.crash("A")
        wipe_replica(cluster, "A")
        assert len(rep.wal) == 0
        assert rep.wal.next_lsn == high  # LSNs are never reused
        cluster.recover("A")  # empty log replays to an empty store
        assert rep.entry_count() == 0
