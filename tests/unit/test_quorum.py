"""Unit tests for quorum policies."""

import random
from collections import Counter

import pytest

from repro.core.config import SuiteConfig
from repro.core.errors import QuorumUnavailableError
from repro.core.quorum import (
    LocalityQuorumPolicy,
    PreferredQuorumPolicy,
    QuorumPolicy,
    RandomQuorumPolicy,
    StickyQuorumPolicy,
)

CFG_322 = SuiteConfig.from_xyz("3-2-2")
CFG_423 = SuiteConfig.from_xyz("4-2-3")


class TestRandomPolicy:
    def test_quorum_carries_enough_votes(self):
        policy = RandomQuorumPolicy()
        rng = random.Random(1)
        for _ in range(50):
            quorum = policy.select("read", ["A", "B", "C"], CFG_322, rng)
            assert sum(CFG_322.votes[n] for n in quorum) >= 2

    def test_insufficient_votes_raise(self):
        policy = RandomQuorumPolicy()
        with pytest.raises(QuorumUnavailableError):
            policy.select("write", ["A"], CFG_322, random.Random(1))

    def test_uniform_coverage(self):
        policy = RandomQuorumPolicy()
        rng = random.Random(2)
        counts = Counter()
        for _ in range(3000):
            for n in policy.select("read", ["A", "B", "C"], CFG_322, rng):
                counts[n] += 1
        # Each representative should appear in roughly 2/3 of quorums.
        for n in "ABC":
            assert 1800 < counts[n] < 2200

    def test_zero_vote_reps_never_selected(self):
        config = SuiteConfig(
            votes={"A": 1, "B": 1, "C": 1, "HINT": 0},
            read_quorum=2,
            write_quorum=2,
        )
        policy = RandomQuorumPolicy()
        rng = random.Random(3)
        for _ in range(100):
            quorum = policy.select(
                "read", ["A", "B", "C", "HINT"], config, rng
            )
            assert "HINT" not in quorum

    def test_weighted_votes_respected(self):
        config = SuiteConfig(
            votes={"big": 3, "s1": 1, "s2": 1}, read_quorum=3, write_quorum=3
        )
        policy = RandomQuorumPolicy()
        rng = random.Random(4)
        for _ in range(50):
            quorum = policy.select("write", list(config.names), config, rng)
            assert sum(config.votes[n] for n in quorum) >= 3

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            QuorumPolicy.quorum_size("scribble", CFG_322)


class TestStickyPolicy:
    def test_reuses_quorum_while_available(self):
        policy = StickyQuorumPolicy()
        rng = random.Random(5)
        first = policy.select("write", ["A", "B", "C"], CFG_322, rng)
        for _ in range(20):
            assert policy.select("write", ["A", "B", "C"], CFG_322, rng) == first

    def test_repicks_when_member_unavailable(self):
        policy = StickyQuorumPolicy()
        rng = random.Random(6)
        first = policy.select("write", ["A", "B", "C"], CFG_322, rng)
        gone = first[0]
        remaining = [n for n in ["A", "B", "C"] if n != gone]
        replacement = policy.select("write", remaining, CFG_322, rng)
        assert gone not in replacement

    def test_switch_prob_one_behaves_randomly(self):
        policy = StickyQuorumPolicy(switch_prob=1.0)
        rng = random.Random(7)
        seen = set()
        for _ in range(60):
            seen.add(tuple(sorted(policy.select("write", ["A", "B", "C"], CFG_322, rng))))
        assert len(seen) == 3  # all three 2-subsets show up

    def test_read_and_write_tracked_separately(self):
        policy = StickyQuorumPolicy()
        rng = random.Random(8)
        read = policy.select("read", ["A", "B", "C"], CFG_322, rng)
        write = policy.select("write", ["A", "B", "C"], CFG_322, rng)
        # They may coincide by chance, but re-selection is independent.
        assert policy._last["read"] == read
        assert policy._last["write"] == write

    def test_bad_switch_prob_rejected(self):
        with pytest.raises(ValueError):
            StickyQuorumPolicy(switch_prob=1.5)


class TestPreferredPolicy:
    def test_takes_preference_order(self):
        policy = PreferredQuorumPolicy(preference=["C", "A", "B"])
        quorum = policy.select("read", ["A", "B", "C"], CFG_322, random.Random(9))
        assert quorum == ["C", "A"]

    def test_skips_unavailable_preferred(self):
        policy = PreferredQuorumPolicy(preference=["C", "A", "B"])
        quorum = policy.select("read", ["A", "B"], CFG_322, random.Random(9))
        assert quorum == ["A", "B"]

    def test_unlisted_reps_used_as_fallback(self):
        policy = PreferredQuorumPolicy(preference=["A"])
        quorum = policy.select("write", ["A", "B", "C"], CFG_322, random.Random(9))
        assert quorum[0] == "A" and len(quorum) == 2


class TestLocalityPolicy:
    """The Figure 16 4-2-3 example: A1, A2 local; B1, B2 remote."""

    def _config(self):
        return SuiteConfig(
            votes={"A1": 1, "A2": 1, "B1": 1, "B2": 1},
            read_quorum=2,
            write_quorum=3,
        )

    def test_reads_fully_local(self):
        config = self._config()
        policy = LocalityQuorumPolicy(local=["A1", "A2"])
        rng = random.Random(10)
        for _ in range(20):
            quorum = policy.select(
                "read", ["A1", "A2", "B1", "B2"], config, rng
            )
            assert quorum == ["A1", "A2"]

    def test_writes_rotate_remote_member(self):
        config = self._config()
        policy = LocalityQuorumPolicy(local=["A1", "A2"])
        rng = random.Random(11)
        remotes = []
        for _ in range(10):
            quorum = policy.select(
                "write", ["A1", "A2", "B1", "B2"], config, rng
            )
            assert set(quorum) >= {"A1", "A2"}
            remote = [n for n in quorum if n.startswith("B")]
            assert len(remote) == 1
            remotes.append(remote[0])
        # "evenly distributed among the remote representatives"
        counts = Counter(remotes)
        assert counts["B1"] == counts["B2"] == 5

    def test_falls_back_to_remote_reads_when_local_down(self):
        config = self._config()
        policy = LocalityQuorumPolicy(local=["A1", "A2"])
        quorum = policy.select(
            "read", ["A2", "B1", "B2"], config, random.Random(12)
        )
        assert quorum[0] == "A2" and len(quorum) == 2


class _FixedDetector:
    """Stand-in detector suspecting a fixed set of node ids."""

    def __init__(self, suspects):
        self._suspects = set(suspects)

    def is_suspect(self, node_id):
        return node_id in self._suspects


class TestDetectorScreening:
    def test_suspects_screened_out(self):
        policy = RandomQuorumPolicy()
        policy.bind_detector(_FixedDetector({"node-C"}), node_of=lambda n: f"node-{n}")
        rng = random.Random(1)
        for _ in range(50):
            quorum = policy.choose("read", ["A", "B", "C"], CFG_322, rng)
            assert "C" not in quorum

    def test_falls_back_when_survivors_cannot_carry_quorum(self):
        # Suspecting B and C leaves only 1 trusted vote for a 2-vote
        # quorum: screening must be abandoned, not fail the operation.
        policy = RandomQuorumPolicy()
        policy.bind_detector(_FixedDetector({"B", "C"}))
        quorum = policy.choose("write", ["A", "B", "C"], CFG_322, random.Random(2))
        assert sum(CFG_322.votes[n] for n in quorum) >= 2

    def test_screening_counters_published(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        policy = RandomQuorumPolicy()
        policy.bind_metrics(registry)
        policy.bind_detector(_FixedDetector({"C"}))
        policy.choose("read", ["A", "B", "C"], CFG_322, random.Random(3))
        assert registry.snapshot()["suite.quorum.read.suspects_screened"] == 1

    def test_fallback_counter_published(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        policy = RandomQuorumPolicy()
        policy.bind_metrics(registry)
        policy.bind_detector(_FixedDetector({"B", "C"}))
        policy.choose("write", ["A", "B", "C"], CFG_322, random.Random(4))
        assert registry.snapshot()["suite.quorum.write.suspect_fallbacks"] == 1

    def test_no_detector_means_no_screening(self):
        policy = RandomQuorumPolicy()
        quorum = policy.choose("read", ["A", "B", "C"], CFG_322, random.Random(5))
        assert sum(CFG_322.votes[n] for n in quorum) >= 2
