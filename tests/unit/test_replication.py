"""Unit tests for multi-seed replication and confidence intervals."""

import pytest

from repro.sim.driver import SimulationSpec
from repro.sim.replication import IntervalEstimate, replicate


def small_spec():
    return SimulationSpec(
        config="3-2-2", directory_size=50, operations=400, seed=1
    )


class TestReplicate:
    def test_runs_distinct_seeds(self):
        result = replicate(small_spec(), n_runs=3)
        assert len(result.runs) == 3
        seeds = {run.spec.seed for run in result.runs}
        assert len(seeds) == 3

    def test_pooled_counts(self):
        result = replicate(small_spec(), n_runs=3)
        assert result.pooled.insertions_while_coalescing.n == sum(
            run.delete_stats.insertions_while_coalescing.n
            for run in result.runs
        )

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            replicate(small_spec(), n_runs=0)

    def test_estimate_shape(self):
        result = replicate(small_spec(), n_runs=4)
        est = result.estimate("deletions_while_coalescing")
        assert est.n_runs == 4
        assert est.half_width >= 0
        assert est.low <= est.mean <= est.high

    def test_single_run_interval_infinite(self):
        result = replicate(small_spec(), n_runs=1)
        est = result.estimate("entries_in_ranges_coalesced")
        assert est.half_width == float("inf")

    def test_unknown_confidence_rejected(self):
        result = replicate(small_spec(), n_runs=2)
        with pytest.raises(ValueError):
            result.estimate("entries_in_ranges_coalesced", confidence=0.5)

    def test_summary_has_all_statistics(self):
        result = replicate(small_spec(), n_runs=2)
        summary = result.summary()
        assert set(summary) == {
            "entries_in_ranges_coalesced",
            "deletions_while_coalescing",
            "insertions_while_coalescing",
        }

    def test_interval_brackets_paper_values_at_scale(self):
        # A moderately sized replication should bracket the paper's
        # 3-2-2 / 100-entry values within its 99% interval.
        spec = SimulationSpec(
            config="3-2-2", directory_size=100, operations=3_000, seed=7
        )
        result = replicate(spec, n_runs=4)
        est = result.estimate("deletions_while_coalescing", confidence=0.99)
        assert est.contains(0.88) or abs(est.mean - 0.88) < 0.15

    def test_str_format(self):
        est = IntervalEstimate(1.234, 0.056, 5, 0.95)
        assert str(est) == "1.234 ± 0.056"
