"""Unit tests for operation traces."""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.sim.trace import Trace, replay
from repro.sim.workload import Operation, UniformWorkload


def sample_trace():
    trace = Trace(metadata={"seed": 9})
    workload = UniformWorkload(seed=9)
    for op in workload.initial_load(10):
        trace.record(op)
    for op in trace.record_all(workload.operations(40)):
        pass
    return trace


class TestSerialization:
    def test_roundtrip(self):
        trace = sample_trace()
        restored = Trace.loads(trace.dumps())
        assert restored.operations == trace.operations
        assert restored.metadata == {"seed": 9}

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "ops.jsonl"
        trace.save(path)
        assert Trace.load(path).operations == trace.operations

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.loads("")

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            Trace.loads('{"format": 99, "count": 0, "metadata": {}}\n')

    def test_count_mismatch_rejected(self):
        header = '{"format": 1, "count": 5, "metadata": {}}'
        with pytest.raises(ValueError):
            Trace.loads(header + "\n")

    def test_record_all_is_lazy_passthrough(self):
        trace = Trace()
        source = iter([Operation("lookup", 0.5)])
        stream = trace.record_all(source)
        assert len(trace) == 0  # nothing consumed yet
        next(stream)
        assert len(trace) == 1


class TestReplay:
    def test_replay_reproduces_state(self):
        trace = sample_trace()
        a = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        b = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=999))  # different quorums
        counts_a = replay(trace, a.suite)
        counts_b = replay(trace, b.suite)
        assert counts_a == counts_b
        # Same trace -> same logical directory, regardless of quorum luck.
        assert a.suite.authoritative_state() == b.suite.authoritative_state()

    def test_replay_counts(self):
        trace = Trace()
        trace.record(Operation("insert", 0.5, "v"))
        trace.record(Operation("lookup", 0.5))
        trace.record(Operation("update", 0.5, "w"))
        trace.record(Operation("delete", 0.5))
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=2))
        counts = replay(trace, cluster.suite)
        assert counts == {
            "insert": 1, "update": 1, "delete": 1, "lookup": 1, "failed": 0,
        }

    def test_replay_error_modes(self):
        from repro.core.errors import KeyNotPresentError

        trace = Trace()
        trace.record(Operation("delete", 0.5))  # key never inserted
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3))
        with pytest.raises(KeyNotPresentError):
            replay(trace, cluster.suite, on_error="raise")
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=3))
        counts = replay(trace, cluster.suite, on_error="count")
        assert counts["failed"] == 1

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            replay(Trace(), None, on_error="ignore")
