"""Drift test: the metric catalog in docs/OBSERVABILITY.md vs runtime.

Exercises every registration path in the codebase, then checks both
directions:

* every metric name a real cluster registers matches a catalog row, and
* every catalog row is producible (matched by at least one runtime name).

Catalog rows use ``<placeholder>`` syntax (``suite.quorum.<read\\|write>``,
``rep.<name>.locks``); the test expands those into patterns.
"""

import re
from pathlib import Path

import pytest

from repro.cluster import ClusterSpec
from repro import (
    DirectoryCluster,
    HintedDirectory,
    ResilientSuite,
    RetryPolicy,
    ShardedDirectory,
    StickyQuorumPolicy,
    SuiteConfig,
)
from repro.net import FailureDetector, LossyLinks
from repro.obs.audit import InvariantAuditor

#: Shard suites publish through a ``shard<i>.``-scoped registry view; the
#: catalog documents the unscoped names once, not per shard.
_SHARD_PREFIX = re.compile(r"^shard\d+\.")

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"
CATALOG_HEADER = "| name | kind | meaning |"


def catalog_rows():
    """(name, kind) for each row of the metric-catalog table."""
    lines = DOC.read_text().splitlines()
    start = lines.index(CATALOG_HEADER) + 2  # skip header + separator
    rows = []
    for line in lines[start:]:
        if not line.startswith("|"):
            break
        # Protect escaped pipes inside placeholders before splitting.
        cells = [
            c.strip().replace("\x00", "|")
            for c in line.replace("\\|", "\x00").strip("|").split("|")
        ]
        rows.append((cells[0].strip("`"), cells[1]))
    return rows


def pattern_for(name):
    """Compile a catalog name, expanding ``<...>`` placeholders."""
    out, i = [], 0
    while i < len(name):
        if name[i] == "<":
            j = name.index(">", i)
            body = name[i + 1 : j]
            if "|" in body:  # enumerated alternatives
                out.append(
                    "(?:"
                    + "|".join(re.escape(b) for b in body.split("|"))
                    + ")"
                )
            else:  # free-form single segment, e.g. a replica name
                out.append(r"[A-Za-z0-9_-]+")
            i = j + 1
        else:
            out.append(re.escape(name[i]))
            i += 1
    return re.compile("".join(out) + r"\Z")


@pytest.fixture(scope="module")
def runtime_names():
    """Register every metric the codebase can, return the snapshot keys."""
    config = SuiteConfig(
        votes={"A": 1, "B": 1, "C": 1, "cache": 0},
        read_quorum=2,
        write_quorum=2,
    )
    cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=3, quorum_policy=StickyQuorumPolicy()))
    suite = cluster.suite
    HintedDirectory(suite, hint="cache")
    # Loss counters register eagerly when a fault model is installed.
    cluster.network.install_faults(LossyLinks(request_loss=0.0))
    cluster.network.install_faults(None)
    detector = FailureDetector(
        cluster.network.clock.now, metrics=cluster.metrics
    )
    suite.attach_detector(detector)
    front = ResilientSuite(suite, policy=RetryPolicy(max_attempts=3))

    # Sticky reuse on both quorum kinds (second op of each kind).
    front.insert("a", 1)
    front.insert("b", 2)
    front.lookup("a")
    front.lookup("b")
    # Suspect one replica: enough trusted votes remain -> screening.
    detector.record_down(suite.placements["C"].node_id)
    front.lookup("a")
    front.update("a", 3)
    # Suspect a second: too few trusted votes -> screened fallback.
    detector.record_down(suite.placements["B"].node_id)
    front.lookup("a")
    front.delete("b")

    InvariantAuditor(cluster).run()

    # Replica lifecycle: a wipe + online rejoin and one anti-entropy
    # sweep register every repl.* counter (repl.membership is automatic
    # on any suite).
    from repro.repl import AntiEntropySweeper, ReplicaJoin, wipe_replica

    cluster.crash("C")
    wipe_replica(cluster, "C")
    ReplicaJoin(cluster, "C", detector=detector).run()
    AntiEntropySweeper(cluster).sweep_all(rounds=1)

    # A sharded directory contributes the root-level routing metrics and
    # shard<i>.-scoped copies of every per-cluster name.
    sharded = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=3), shards=2)
    sharded.insert(0.2, "x")
    sharded.insert(0.8, "y")
    sharded.make_auditor().run()

    # The asyncio service plane registers the transport RPC metrics,
    # the front-door counters, and (via a STATS request) every live.*
    # telemetry counter.
    from repro.service.client import DirectoryClient
    from repro.service.server import DirectoryService

    with ShardedDirectory.create(
        ClusterSpec(config="1-1-1", seed=3, transport="asyncio"), shards=1
    ) as aio:
        with DirectoryService(aio).start() as service:
            with DirectoryClient(service.host, service.port) as front:
                front.set("k", "v")
                front.stats()
        service_names = set(aio.metrics.snapshot())

    names = (
        set(cluster.metrics.snapshot())
        | set(sharded.metrics.snapshot())
        | service_names
    )
    return sorted(names)


class TestMetricsCatalogDrift:
    def test_every_runtime_metric_is_documented(self, runtime_names):
        patterns = [pattern_for(name) for name, _ in catalog_rows()]
        undocumented = [
            name
            for name in runtime_names
            if not any(p.match(_SHARD_PREFIX.sub("", name)) for p in patterns)
        ]
        assert not undocumented, (
            "metrics registered at runtime but missing from the "
            f"docs/OBSERVABILITY.md catalog: {undocumented}"
        )

    def test_every_documented_metric_is_producible(self, runtime_names):
        stale = [
            name
            for name, _ in catalog_rows()
            if not any(
                pattern_for(name).match(_SHARD_PREFIX.sub("", r))
                for r in runtime_names
            )
        ]
        assert not stale, (
            "catalog rows in docs/OBSERVABILITY.md that no runtime path "
            f"registers any more: {stale}"
        )

    def test_catalog_parses(self):
        rows = catalog_rows()
        assert len(rows) >= 20
        kinds = {kind for _, kind in rows}
        assert kinds <= {"counter", "gauge", "histogram", "provider"}

    def test_screening_paths_really_fired(self, runtime_names):
        # The lazy quorum counters only exist if the scenario above
        # actually exercised suspicion screening and sticky reuse.
        assert any("suspects_screened" in n for n in runtime_names)
        assert any("suspect_fallbacks" in n for n in runtime_names)
        assert any("sticky_reuses" in n for n in runtime_names)
