"""Unit tests for checkpoint policies."""

import pytest

from repro.storage.snapshot import CheckpointPolicy, EveryNCommits, LogSizeBound


class TestBasePolicy:
    def test_never_checkpoints(self):
        policy = CheckpointPolicy()
        assert not policy.should_checkpoint(10**6, 10**6)


class TestEveryNCommits:
    def test_triggers_at_n(self):
        policy = EveryNCommits(3)
        assert not policy.should_checkpoint(2, 100)
        assert policy.should_checkpoint(3, 100)
        assert policy.should_checkpoint(4, 0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            EveryNCommits(0)


class TestLogSizeBound:
    def test_triggers_at_bound(self):
        policy = LogSizeBound(50)
        assert not policy.should_checkpoint(100, 49)
        assert policy.should_checkpoint(0, 50)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            LogSizeBound(0)
