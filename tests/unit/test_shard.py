"""Unit tests for shard maps, the ClusterSpec shim, scoped metrics, and
the sharded directory's routing/wave mechanics."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import (
    ConfigurationError,
    KeyNotPresentError,
    ReproError,
)
from repro.core.quorum import StickyQuorumPolicy
from repro.net.network import Network, uniform_latency
from repro.obs.metrics import MetricsRegistry
from repro.shard import (
    HashShardMap,
    RangeShardMap,
    ShardMap,
    ShardedDirectory,
    VersionedShardMap,
    resolve_shard_map,
)

# -- shard maps -----------------------------------------------------------------


class TestRangeShardMap:
    def test_routing_by_boundaries(self):
        m = RangeShardMap([0.25, 0.5, 0.75])
        assert m.shards == 4
        assert m.shard_of(0.0) == 0
        assert m.shard_of(0.24) == 0
        assert m.shard_of(0.25) == 1  # boundary belongs to the right range
        assert m.shard_of(0.5) == 2
        assert m.shard_of(0.99) == 3

    def test_uniform_split_covers_evenly(self):
        m = RangeShardMap.uniform(8)
        counts = [0] * 8
        rng = random.Random(0)
        for _ in range(8000):
            counts[m.shard_of(rng.random())] += 1
        assert m.shards == 8
        assert min(counts) > 800  # each ~1000, uniform keys

    def test_single_shard_owns_everything(self):
        m = RangeShardMap.uniform(1)
        assert m.shards == 1
        assert m.shard_of(0.0) == m.shard_of(0.999) == 0

    def test_boundaries_must_increase(self):
        with pytest.raises(ConfigurationError):
            RangeShardMap([0.5, 0.5])
        with pytest.raises(ConfigurationError):
            RangeShardMap([0.7, 0.2])

    def test_duplicate_boundary_names_the_offender(self):
        with pytest.raises(
            ConfigurationError,
            match=r"duplicate range boundary 'm' at positions 1 and 2",
        ):
            RangeShardMap(["f", "m", "m", "t"])

    def test_empty_string_boundary_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"boundary 1 is the empty string"
        ):
            RangeShardMap(["a", ""])

    def test_non_increasing_message_names_both_boundaries(self):
        with pytest.raises(
            ConfigurationError,
            match=r"boundary 'b' at position 1 does not sort above 'q'",
        ):
            RangeShardMap(["q", "b"])

    def test_uniform_validation(self):
        with pytest.raises(ConfigurationError):
            RangeShardMap.uniform(0)
        with pytest.raises(ConfigurationError):
            RangeShardMap.uniform(4, low=1.0, high=1.0)

    def test_is_a_shard_map(self):
        assert isinstance(RangeShardMap.uniform(2), ShardMap)


class TestHashShardMap:
    def test_stable_across_instances(self):
        a, b = HashShardMap(8), HashShardMap(8)
        keys = [random.Random(1).random() for _ in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_in_range_and_spread(self):
        m = HashShardMap(8)
        rng = random.Random(2)
        counts = [0] * 8
        for _ in range(8000):
            counts[m.shard_of(rng.random())] += 1
        assert all(0 <= m.shard_of(rng.random()) < 8 for _ in range(100))
        assert min(counts) > 800

    def test_spreads_skewed_keys_where_range_does_not(self):
        # Keys concentrated near 0.0: a range split piles onto shard 0,
        # the hash split stays balanced.  This asymmetry is the reason
        # HashShardMap exists.
        rng = random.Random(3)
        keys = [rng.random() ** 4 for _ in range(4000)]
        range_counts = [0] * 8
        hash_counts = [0] * 8
        rmap, hmap = RangeShardMap.uniform(8), HashShardMap(8)
        for k in keys:
            range_counts[rmap.shard_of(k)] += 1
            hash_counts[hmap.shard_of(k)] += 1
        assert max(range_counts) > 2 * max(hash_counts)
        assert min(hash_counts) > 300

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HashShardMap(0)

    def test_is_a_shard_map(self):
        assert isinstance(HashShardMap(2), ShardMap)

    def test_describe_names_bucket_count(self):
        # ``hash[n]`` is the documented literal form; reports and BENCH
        # documents key on it.
        assert HashShardMap(8).describe() == "hash[8]"
        assert HashShardMap(1).describe() == "hash[1]"


class TestVersionedShardMap:
    def test_wrap_starts_at_epoch_zero_and_routes_identically(self):
        base = RangeShardMap(["g", "p"])
        v = VersionedShardMap.wrap(base)
        assert v.epoch == 0
        assert v.delta is None
        assert v.describe() == base.describe()
        for key in ["a", "g", "h", "p", "z"]:
            assert v.shard_of(key) == base.shard_of(key)
        assert isinstance(v, ShardMap)

    def test_wrap_is_idempotent(self):
        v = VersionedShardMap.wrap(RangeShardMap(["m"]))
        assert VersionedShardMap.wrap(v) is v

    def test_split_bumps_epoch_and_names_the_moved_range(self):
        v = VersionedShardMap.wrap(RangeShardMap(["g", "p"]))
        succ = v.split("c")
        assert succ.epoch == 1
        assert succ.shards == v.shards + 1
        delta = succ.delta
        assert delta.kind == "split"
        assert delta.source == 0
        assert delta.target == v.shards  # default: a brand-new shard
        assert (delta.low, delta.high) == ("c", "g")
        # Only keys inside the delta's range change owner.
        assert succ.shard_of("a") == 0
        assert succ.shard_of("c") == delta.target
        assert succ.shard_of("f") == delta.target
        assert succ.shard_of("g") == v.shard_of("g")
        assert v.epoch == 0  # the predecessor is immutable

    def test_split_of_last_range_has_open_high_end(self):
        succ = VersionedShardMap.wrap(RangeShardMap(["g"])).split("t")
        assert succ.delta.source == 1
        assert (succ.delta.low, succ.delta.high) == ("t", None)
        assert succ.delta.covers("zzz")
        assert not succ.delta.covers("s")

    def test_split_to_existing_target_shard(self):
        v = VersionedShardMap.wrap(RangeShardMap(["g", "p"]))
        succ = v.split("c", target=2)
        assert succ.shards == v.shards  # no new shard
        assert succ.shard_of("d") == 2

    def test_split_rejects_existing_boundary_and_bad_target(self):
        v = VersionedShardMap.wrap(RangeShardMap(["g", "p"]))
        with pytest.raises(ConfigurationError):
            v.split("g")
        with pytest.raises(ConfigurationError):
            v.split("c", target=7)
        with pytest.raises(ConfigurationError):
            v.split("c", target=0)  # target == source moves nothing

    def test_merge_bumps_epoch_and_reassigns_range(self):
        v = VersionedShardMap.wrap(RangeShardMap(["g", "p"]))
        succ = v.merge(1)
        assert succ.epoch == 1
        delta = succ.delta
        assert delta.kind == "merge"
        assert (delta.source, delta.target) == (2, 1)
        assert (delta.low, delta.high) == ("p", None)
        assert succ.shard_of("z") == 1

    def test_merge_rejects_out_of_range_and_same_owner(self):
        v = VersionedShardMap.wrap(RangeShardMap(["g", "p"]))
        with pytest.raises(ConfigurationError):
            v.merge(2)
        # A merge whose two sides already share an owner would copy a
        # range onto itself and then drain-delete it — data loss.
        same = VersionedShardMap(boundaries=["m"], owners=[0, 0], shards=1)
        with pytest.raises(ConfigurationError):
            same.merge(0)
        folded = v.merge(1).merge(0)
        assert folded.epoch == 2
        assert folded.shard_of("z") == 0

    def test_epochs_chain_through_repeated_splits(self):
        v = VersionedShardMap.wrap(RangeShardMap.uniform(2))
        a = v.split(0.25)
        b = a.split(0.75)
        assert (v.epoch, a.epoch, b.epoch) == (0, 1, 2)
        assert "e2" in b.describe()
        assert b.shards == 4

    def test_delegate_maps_split_is_rejected(self):
        v = VersionedShardMap.wrap(HashShardMap(4))
        assert v.epoch == 0
        assert v.shard_of("k") == HashShardMap(4).shard_of("k")
        with pytest.raises(ConfigurationError):
            v.split("m")

    def test_ranges_tile_the_key_space(self):
        succ = VersionedShardMap.wrap(RangeShardMap(["g", "p"])).split("c")
        ranges = succ.ranges()
        assert ranges[0][0] is None and ranges[-1][1] is None
        for (_, high, _), (low, _, _) in zip(ranges, ranges[1:]):
            assert high == low


class TestResolveShardMap:
    def test_names(self):
        assert isinstance(resolve_shard_map("range", 4), RangeShardMap)
        assert isinstance(resolve_shard_map("hash", 4), HashShardMap)
        assert resolve_shard_map("range", None).shards == 4  # default

    def test_instance_passthrough_and_mismatch(self):
        m = HashShardMap(8)
        assert resolve_shard_map(m, 8) is m
        assert resolve_shard_map(m, None) is m
        with pytest.raises(ConfigurationError):
            resolve_shard_map(m, 4)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            resolve_shard_map("modulo", 4)


# -- ClusterSpec and the keyword shim ------------------------------------------


class TestClusterSpec:
    def test_kwargs_shim_equals_spec(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            a = DirectoryCluster.create("5-3-3", seed=11, store="btree")
        b = DirectoryCluster.create(
            ClusterSpec(config="5-3-3", seed=11, store="btree")
        )
        ops = [(0.1, "x"), (0.6, "y"), (0.3, "z")]
        for key, value in ops:
            a.suite.insert(key, value)
            b.suite.insert(key, value)
        assert (
            a.suite.authoritative_state() == b.suite.authoritative_state()
        )
        assert a.network.stats.messages == b.network.stats.messages
        assert a.network.clock.now() == b.network.clock.now()

    def test_spec_plus_keywords_rejected(self):
        with pytest.raises(TypeError, match="inside the ClusterSpec"):
            DirectoryCluster.create(ClusterSpec(), seed=1)

    def test_unknown_option_rejected_with_valid_list(self):
        with pytest.raises(TypeError, match="store"):
            DirectoryCluster.create("3-2-2", stor="sorted")

    def test_network_and_latency_conflict(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(network=Network(), latency=uniform_latency(2.0))

    def test_for_shard_offsets_seed_and_prefixes_nodes(self):
        net = Network()
        spec = ClusterSpec(seed=10)
        shard2 = spec.for_shard(2, net, net.metrics.scoped("shard2"))
        assert shard2.seed == 12
        assert shard2.network is None
        assert shard2.transport.network is net
        assert shard2.node_for_rep("A") == "s2:node-A"
        assert shard2.latency is None

    def test_for_shard_keeps_unseeded_unseeded(self):
        net = Network()
        spec = ClusterSpec(seed=None)
        assert spec.for_shard(1, net, net.metrics.scoped("shard1")).seed is None

    def test_for_shard_rejects_policy_instance(self):
        net = Network()
        spec = ClusterSpec(quorum_policy=StickyQuorumPolicy())
        with pytest.raises(ConfigurationError, match="factory"):
            spec.for_shard(0, net, net.metrics.scoped("shard0"))

    def test_for_shard_calls_policy_factory(self):
        net = Network()
        spec = ClusterSpec(quorum_policy=StickyQuorumPolicy)
        stamped = spec.for_shard(0, net, net.metrics.scoped("shard0"))
        assert isinstance(stamped.quorum_policy, StickyQuorumPolicy)


# -- scoped metrics -------------------------------------------------------------


class TestScopedMetrics:
    def test_prefixes_and_strips(self):
        root = MetricsRegistry()
        scope = root.scoped("shard0")
        scope.counter("ops").inc()
        scope.gauge("depth", lambda: 3)
        scope.provider("table", lambda: {"a": 1})
        root_snap = root.snapshot()
        assert root_snap["shard0.ops"] == 1
        assert root_snap["shard0.depth"] == 3
        assert root_snap["shard0.table"] == {"a": 1}
        assert scope.snapshot() == {"ops": 1, "depth": 3, "table": {"a": 1}}

    def test_scopes_do_not_share_counters(self):
        root = MetricsRegistry()
        root.scoped("shard0").counter("ops").inc()
        root.scoped("shard1").counter("ops").inc()
        root.scoped("shard1").counter("ops").inc()
        snap = root.snapshot()
        assert snap["shard0.ops"] == 1
        assert snap["shard1.ops"] == 2

    def test_nested_scopes(self):
        root = MetricsRegistry()
        root.scoped("a").scoped("b").counter("x").inc()
        assert root.snapshot()["a.b.x"] == 1

    def test_bad_prefix(self):
        root = MetricsRegistry()
        with pytest.raises(ValueError):
            root.scoped("")
        with pytest.raises(ValueError):
            root.scoped("a..b")


# -- the sharded directory ------------------------------------------------------


class TestShardedDirectory:
    def test_routes_and_counts(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=4)
        keys = [0.1, 0.3, 0.6, 0.9]
        for k in keys:
            sd.insert(k, k)
        assert sd.routed == [1, 1, 1, 1]
        assert sd.last_routed_shard == 3
        sd.lookup(0.1)
        assert sd.routed == [2, 1, 1, 1]
        assert sd.last_routed_shard == 0
        snap = sd.metrics.snapshot()
        assert snap["shard.count"] == 4
        assert snap["shard.routed"] == {"s0": 2, "s1": 1, "s2": 1, "s3": 1}

    def test_size_sums_shards(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=3)
        for i in range(9):
            sd.insert(i / 9 + 0.01, i)
        assert sd.size() == 9

    def test_shared_network_and_disjoint_nodes(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        node_ids = {n.node_id for n in sd.network.nodes()}
        assert "s0:node-A" in node_ids and "s1:node-A" in node_ids
        assert all(c.network is sd.network for c in sd.clusters)

    def test_representatives_merged_by_shard(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        names = set(sd.representatives)
        assert {"s0/A", "s0/B", "s0/C", "s1/A", "s1/B", "s1/C"} == names

    def test_op_counts_aggregate_across_shards(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=4)
        for k in (0.1, 0.3, 0.6, 0.9):
            sd.insert(k, k)
            sd.lookup(k)
        assert sd.op_counts.inserts == 4
        assert sd.op_counts.lookups == 4

    def test_wave_pays_max_not_sum(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        clock = sd.network.clock

        # Serial baseline: same ops one after another.
        serial = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        t0 = serial.network.clock.now()
        serial.insert(0.1, "a")
        one_op = serial.network.clock.now() - t0
        serial.insert(0.9, "b")
        serial_ticks = serial.network.clock.now() - t0

        t0 = clock.now()
        outcomes = sd.execute_wave([("insert", 0.1, "a"), ("insert", 0.9, "b")])
        wave_ticks = clock.now() - t0

        assert all(o.ok for o in outcomes)
        assert serial_ticks == pytest.approx(2 * one_op)
        # The two inserts hit different shards, so the wave costs the
        # slower one, not the sum.
        assert wave_ticks == pytest.approx(one_op)
        assert sd.authoritative_state() == serial.authoritative_state()

    def test_wave_same_shard_stays_sequential(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        clock = sd.network.clock
        t0 = clock.now()
        sd.insert(0.05, "warm")
        one_op = clock.now() - t0
        t0 = clock.now()
        outcomes = sd.execute_wave(
            [("insert", 0.1, "a"), ("insert", 0.2, "b")]  # both shard 0
        )
        assert all(o.ok for o in outcomes)
        assert clock.now() - t0 >= 2 * one_op * 0.9

    def test_wave_captures_errors_without_aborting(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        outcomes = sd.execute_wave(
            [("delete", 0.1), ("insert", 0.9, "b"), ("lookup", 0.9)]
        )
        assert isinstance(outcomes[0].error, KeyNotPresentError)
        assert outcomes[1].ok
        assert outcomes[2].ok and outcomes[2].value == (True, "b")
        # Results come back in input order with shard attribution.
        assert [o.kind for o in outcomes] == ["delete", "insert", "lookup"]
        assert outcomes[1].shard == 1

    def test_wave_unknown_kind(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=1)
        with pytest.raises(ValueError):
            sd.execute_wave([("upsert", 0.1, "x")])

    def test_mismatched_map_and_clusters_rejected(self):
        net = Network()
        spec = ClusterSpec(seed=0)
        clusters = [
            DirectoryCluster.create(
                spec.for_shard(i, net, net.metrics.scoped(f"shard{i}"))
            )
            for i in range(2)
        ]
        with pytest.raises(ConfigurationError):
            ShardedDirectory(RangeShardMap.uniform(3), clusters, net)

    def test_foreign_network_rejected(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        with pytest.raises(ConfigurationError):
            ShardedDirectory(
                RangeShardMap.uniform(2), sd.clusters, Network()
            )

    def test_spec_plus_keywords_rejected(self):
        with pytest.raises(TypeError):
            ShardedDirectory.create(ClusterSpec(), shards=2, seed=1)

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown cluster option"):
            ShardedDirectory.create("3-2-2", shards=2, sede=1)

    def test_errors_propagate_unwrapped(self):
        sd = ShardedDirectory.create(ClusterSpec(config="3-2-2", seed=0), shards=2)
        with pytest.raises(ReproError):
            sd.delete(0.5)
