"""Unit tests for the online invariant auditor (repro.obs.audit).

Each invariant gets a clean-pass test and a seeded-violation test: the
violation is planted by mutating replica stores directly (below the
algorithm), which is exactly the class of corruption the auditor exists
to catch.
"""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.keys import HIGH, LOW, wrap
from repro.obs.audit import AuditReport, AuditViolation, InvariantAuditor


def make_cluster(**kw):
    return DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=11, **kw))


def violations_by_check(report):
    out = {}
    for v in report.violations:
        out.setdefault(v.check, []).append(v)
    return out


class TestCleanCluster:
    def test_fresh_cluster_audits_clean(self):
        cluster = make_cluster()
        report = InvariantAuditor(cluster).run()
        assert report.ok
        assert report.runs == 1
        assert report.checks > 0
        # Only [LOW .. HIGH] exists.
        assert report.intervals_audited == 1
        assert report.keys_audited == 0

    def test_working_cluster_audits_clean(self):
        cluster = make_cluster()
        for i in range(20):
            cluster.suite.insert(f"k{i:02d}", i)
        for i in range(0, 20, 3):
            cluster.suite.delete(f"k{i:02d}")
        report = InvariantAuditor(cluster).run()
        assert report.ok, report.render()
        assert report.keys_audited > 0
        assert report.intervals_audited == report.keys_audited + 1

    def test_counters_published(self):
        cluster = make_cluster()
        auditor = InvariantAuditor(cluster)
        auditor.run()
        snap = cluster.metrics.snapshot()
        assert snap["audit.checks"] == auditor.report.checks
        assert snap["audit.violations"] == 0

    def test_cumulative_report_accumulates(self):
        cluster = make_cluster()
        auditor = InvariantAuditor(cluster)
        auditor.run()
        auditor.run()
        assert auditor.report.runs == 2


class TestTiling:
    def test_seeded_structural_corruption(self):
        cluster = make_cluster()
        cluster.suite.insert("a", 1)
        # Break the gaps-tile-the-keyspace arity on one replica.
        cluster.representatives["A"].store._gaps.append(0)
        report = InvariantAuditor(cluster).run()
        flagged = violations_by_check(report)
        assert "tiling" in flagged
        assert flagged["tiling"][0].replica == "A"


class TestMonotonicity:
    def test_equal_max_versions_must_agree(self):
        cluster = make_cluster()
        # Two replicas claim version 5 for the same key with different
        # values — impossible under correct version assignment.
        cluster.representatives["A"].store.insert(wrap("k"), 5, "x")
        cluster.representatives["B"].store.insert(wrap("k"), 5, "y")
        report = InvariantAuditor(cluster).run()
        flagged = violations_by_check(report)
        assert "monotonicity" in flagged
        assert "disagree" in flagged["monotonicity"][0].detail

    def test_dominated_stale_value_is_fine(self):
        cluster = make_cluster()
        # A write quorum (A, B) carries version 2; C was skipped and
        # still holds a dominated version 1. Legal — resolution picks 2.
        cluster.representatives["A"].store.insert(wrap("k"), 2, "new")
        cluster.representatives["B"].store.insert(wrap("k"), 2, "new")
        cluster.representatives["C"].store.insert(wrap("k"), 1, "stale")
        report = InvariantAuditor(cluster).run()
        assert report.ok, report.render()


class TestQuorumIntersection:
    def test_entry_version_on_too_few_votes(self):
        cluster = make_cluster()
        cluster.representatives["A"].store.insert(wrap("k"), 5, "x")
        report = InvariantAuditor(cluster).run()
        flagged = violations_by_check(report)
        assert "quorum-intersection" in flagged
        assert "write quorum" in flagged["quorum-intersection"][0].detail

    def test_gap_version_on_too_few_votes(self):
        cluster = make_cluster()
        # Bump the whole-keyspace gap version on one replica only: the
        # interval's current version is then held by 1 vote < W=2.
        cluster.representatives["A"].store.coalesce(LOW, HIGH, 1)
        report = InvariantAuditor(cluster).run()
        flagged = violations_by_check(report)
        assert "quorum-intersection" in flagged

    def test_skipped_while_a_voting_replica_is_down(self):
        cluster = make_cluster()
        cluster.suite.insert("k", 1)
        cluster.crash("C")
        # C's volatile store reset to empty — legitimately behind; the
        # vote-counting checks must not fire.
        report = InvariantAuditor(cluster).run()
        assert report.ok, report.render()


class TestGhostsAndModel:
    def test_ghost_census_counts_dominated_entries(self):
        cluster = make_cluster()
        # A and B saw insert then coalesce-delete (gap version 2); C
        # kept the entry — a classic ghost, expected and legal.
        for name in ("A", "B"):
            store = cluster.representatives[name].store
            store.insert(wrap("k"), 1, "x")
            store.coalesce(LOW, HIGH, 2)
        cluster.representatives["C"].store.insert(wrap("k"), 1, "x")
        report = InvariantAuditor(cluster).run()
        assert report.ok, report.render()
        assert report.ghosts == 1

    def test_model_diff_flags_divergence(self):
        cluster = make_cluster()
        cluster.suite.insert("a", 1)
        report = InvariantAuditor(cluster).run(model={"a": 1, "zz": 9})
        flagged = violations_by_check(report)
        assert len(flagged.get("model", [])) == 1
        assert "zz" in flagged["model"][0].key

    def test_matching_model_is_clean(self):
        cluster = make_cluster()
        cluster.suite.insert("a", 1)
        cluster.suite.insert("b", 2)
        cluster.suite.delete("a")
        report = InvariantAuditor(cluster).run(model={"b": 2})
        assert report.ok, report.render()


class TestReport:
    def test_merge_and_summary(self):
        a = AuditReport(runs=1, checks=5, ghosts=1, keys_audited=2)
        b = AuditReport(
            runs=1,
            checks=3,
            violations=[AuditViolation("tiling", "A", "k", "boom")],
            skipped=1,
        )
        a.merge(b)
        assert a.runs == 2 and a.checks == 8 and a.skipped == 1
        assert not a.ok
        assert a.summary()["violations"] == 1

    def test_render_lists_violations(self):
        report = AuditReport(
            runs=1,
            checks=1,
            violations=[AuditViolation("tiling", "A", "k", "boom")],
        )
        text = report.render()
        assert "1 violations" in text
        assert "[tiling] rep=A key=k: boom" in text

    def test_record_skip(self):
        cluster = make_cluster()
        auditor = InvariantAuditor(cluster)
        auditor.record_skip()
        assert auditor.report.skipped == 1


class TestDriverIntegration:
    def test_driver_audit_knob(self):
        from repro.sim.driver import SimulationSpec, run_simulation

        spec = SimulationSpec(
            operations=150,
            directory_size=30,
            seed=4,
            audit=True,
            audit_interval=50,
            verify_model=True,
        )
        result = run_simulation(spec)
        assert result.audit_report is not None
        # 3 boundary audits + the final one.
        assert result.audit_report.runs == 4
        assert result.audit_report.ok, result.audit_report.render()
        assert result.metrics["audit.checks"] > 0

    def test_driver_audit_off_by_default(self):
        from repro.sim.driver import SimulationSpec, run_simulation

        result = run_simulation(
            SimulationSpec(operations=20, directory_size=10, seed=4)
        )
        assert result.audit_report is None
        assert "audit.checks" not in result.metrics
