"""Unit tests for the suspicion-cache failure detector."""

import pytest

from repro.net.clock import SimClock
from repro.net.detector import FailureDetector
from repro.obs.metrics import MetricsRegistry


def make(probation=100.0, threshold=2, metrics=None):
    clock = SimClock()
    det = FailureDetector(
        clock.now,
        probation=probation,
        timeout_threshold=threshold,
        metrics=metrics,
    )
    return clock, det


class TestEvidence:
    def test_down_marks_immediately(self):
        _, det = make()
        det.record_down("n1")
        assert det.is_suspect("n1")
        assert det.suspects() == {"n1"}

    def test_single_timeout_is_not_enough(self):
        _, det = make(threshold=2)
        det.record_timeout("n1")
        assert not det.is_suspect("n1")

    def test_timeout_streak_escalates(self):
        _, det = make(threshold=2)
        det.record_timeout("n1")
        det.record_timeout("n1")
        assert det.is_suspect("n1")

    def test_success_clears_strikes(self):
        _, det = make(threshold=2)
        det.record_timeout("n1")
        det.record_ok("n1")
        det.record_timeout("n1")
        assert not det.is_suspect("n1")  # streak was broken

    def test_success_clears_suspicion(self):
        _, det = make()
        det.record_down("n1")
        det.record_ok("n1")
        assert not det.is_suspect("n1")

    def test_nodes_are_independent(self):
        _, det = make()
        det.record_down("n1")
        assert not det.is_suspect("n2")


class TestProbation:
    def test_expires_on_the_simulated_clock(self):
        clock, det = make(probation=50.0)
        det.record_down("n1")
        clock.advance(49.9)
        assert det.is_suspect("n1")
        clock.advance(0.1)
        assert not det.is_suspect("n1")
        assert det.suspects() == set()

    def test_re_marking_extends_probation(self):
        clock, det = make(probation=50.0)
        det.record_down("n1")
        clock.advance(40.0)
        det.record_down("n1")
        clock.advance(40.0)  # 80 past the first mark, 40 past the second
        assert det.is_suspect("n1")

    def test_strikes_restart_after_probation(self):
        clock, det = make(probation=10.0, threshold=2)
        det.record_timeout("n1")
        det.record_timeout("n1")
        clock.advance(11.0)
        assert not det.is_suspect("n1")
        det.record_timeout("n1")  # a single fresh strike must not re-mark
        assert not det.is_suspect("n1")


class TestAdministrativeRecover:
    """Regression: an explicit recover() must fully forgive the node.

    A suspect node is screened out of quorum selection, so it can never
    earn the successful call that would record_ok() it — without the
    administrative heal, a wiped-and-rejoined replica sat out its whole
    probation window after the join had already proven it alive.
    """

    def test_recover_clears_probation(self):
        _, det = make(probation=10_000.0)
        det.record_down("n1")
        assert det.is_suspect("n1")
        det.recover("n1")
        assert not det.is_suspect("n1")
        assert det.suspects() == set()

    def test_recover_clears_strikes_too(self):
        _, det = make(threshold=2)
        det.record_timeout("n1")  # one strike short of suspicion
        det.recover("n1")
        det.record_timeout("n1")  # must be a *fresh* first strike
        assert not det.is_suspect("n1")

    def test_recover_clears_both_at_once(self):
        _, det = make(probation=10_000.0, threshold=2)
        det.record_timeout("n1")
        det.record_down("n1")
        det.recover("n1")
        assert not det.is_suspect("n1")
        det.record_timeout("n1")
        assert not det.is_suspect("n1")

    def test_recover_on_a_clean_node_is_harmless(self):
        registry = MetricsRegistry()
        _, det = make(metrics=registry)
        det.recover("n1")
        assert not det.is_suspect("n1")
        assert registry.snapshot()["detector.recoveries"] == 0

    def test_recover_counts_as_a_recovery(self):
        registry = MetricsRegistry()
        _, det = make(metrics=registry)
        det.record_down("n1")
        det.recover("n1")
        assert registry.snapshot()["detector.recoveries"] == 1


class TestMetricsAndValidation:
    def test_metrics_published(self):
        registry = MetricsRegistry()
        clock, det = make(probation=10.0, metrics=registry)
        det.record_down("n1")
        det.record_down("n1")  # still one distinct suspicion
        det.record_ok("n1")
        det.record_down("n2")
        snap = registry.snapshot()
        assert snap["detector.suspicions"] == 2
        assert snap["detector.recoveries"] == 1
        assert snap["detector.suspected"] == ["n2"]

    def test_bad_parameters_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            FailureDetector(clock.now, probation=-1.0)
        with pytest.raises(ValueError):
            FailureDetector(clock.now, timeout_threshold=0)

    def test_repr_names_suspects(self):
        _, det = make()
        det.record_down("n1")
        assert "n1" in repr(det)
