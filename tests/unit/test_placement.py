"""Unit tests for availability under correlated failures (placement)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core.config import SuiteConfig
from repro.sim.availability import placement_availability, quorum_availability

CFG = SuiteConfig.from_xyz("3-2-2")


class TestPlacementAvailability:
    def test_one_rep_per_node_matches_independent_analysis(self):
        placement = {"A": "n1", "B": "n2", "C": "n3"}
        for p in (0.5, 0.9, 0.99):
            assert placement_availability(CFG, placement, p, 2) == pytest.approx(
                quorum_availability(CFG, p, 2)
            )

    def test_full_colocation_is_single_point_of_failure(self):
        placement = {"A": "one-box", "B": "one-box", "C": "one-box"}
        assert placement_availability(CFG, placement, 0.9, 2) == pytest.approx(0.9)

    def test_partial_colocation_between_the_extremes(self):
        spread = {"A": "n1", "B": "n2", "C": "n3"}
        partial = {"A": "n1", "B": "n1", "C": "n2"}
        single = {"A": "n1", "B": "n1", "C": "n1"}
        p = 0.9
        a_spread = placement_availability(CFG, spread, p, 2)
        a_partial = placement_availability(CFG, partial, p, 2)
        a_single = placement_availability(CFG, single, p, 2)
        assert a_single <= a_partial <= a_spread
        assert a_partial < a_spread  # strictly worse than full spread

    def test_partial_colocation_exact_value(self):
        # A,B on n1; C on n2.  Quorum of 2 votes needs n1 up (it carries
        # 2 of the 3 votes); n2 alone has only 1 vote.
        placement = {"A": "n1", "B": "n1", "C": "n2"}
        assert placement_availability(CFG, placement, 0.9, 2) == pytest.approx(0.9)

    def test_per_node_probabilities(self):
        placement = {"A": "good", "B": "good", "C": "bad"}
        avail = placement_availability(
            CFG, placement, {"good": 1.0, "bad": 0.0}, 2
        )
        assert avail == pytest.approx(1.0)  # "good" carries 2 votes

    def test_missing_placement_rejected(self):
        with pytest.raises(ValueError):
            placement_availability(CFG, {"A": "n1"}, 0.9, 2)

    def test_cluster_level_consequence(self):
        # The end-to-end version: co-located representatives fail together.
        from repro.cluster import DirectoryCluster
        from repro.core.errors import QuorumUnavailableError

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1, node_for_rep=lambda rep: "shared" if rep in ("A", "B") else "solo"))
        cluster.suite.insert("k", 1)
        cluster.network.node("shared").crash()
        with pytest.raises(QuorumUnavailableError):
            cluster.suite.lookup("k")
