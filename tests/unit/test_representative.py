"""Unit tests for the directory representative (Figure 6 semantics).

Covers each operation's result shape, its locking behaviour (Figure 7),
undo on abort, WAL-based crash recovery, batching, and checkpointing.
"""

import pytest

from repro.core.errors import WouldBlockError
from repro.core.keys import HIGH, LOW, KeyRange, wrap
from repro.core.representative import DirectoryRepresentative
from repro.storage.btree import BTreeStore
from repro.storage.snapshot import EveryNCommits
from repro.txn.locks import LockMode


def loaded_rep(**kwargs):
    """A representative with entries a(1), c(1) and gap versions 0."""
    rep = DirectoryRepresentative("A", **kwargs)
    rep.rep_insert(1, wrap("a"), 1, "A")
    rep.rep_insert(1, wrap("c"), 1, "C")
    rep.commit(1)
    return rep


class TestFigure6Operations:
    def test_lookup_present(self):
        rep = loaded_rep()
        reply = rep.rep_lookup(2, wrap("a"))
        assert reply.present and reply.version == 1 and reply.value == "A"
        rep.abort(2)

    def test_lookup_absent_returns_gap(self):
        rep = loaded_rep()
        reply = rep.rep_lookup(2, wrap("b"))
        assert not reply.present and reply.version == 0
        rep.abort(2)

    def test_predecessor_and_successor(self):
        rep = loaded_rep()
        assert rep.rep_predecessor(2, wrap("b")).key == wrap("a")
        assert rep.rep_successor(2, wrap("b")).key == wrap("c")
        assert rep.rep_predecessor(2, wrap("a")).key.is_low
        assert rep.rep_successor(2, wrap("c")).key.is_high
        rep.abort(2)

    def test_insert_and_overwrite(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        assert rep.rep_lookup(2, wrap("b")).present
        rep.rep_insert(2, wrap("b"), 2, "B2")
        assert rep.rep_lookup(2, wrap("b")).version == 2
        rep.commit(2)

    def test_coalesce_returns_removed_segment(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.commit(2)
        result = rep.rep_coalesce(3, wrap("a"), wrap("c"), 5)
        assert [e.key.payload for e in result.removed.entries] == ["b"]
        assert rep.rep_lookup(3, wrap("b")).version == 5
        rep.commit(3)

    def test_entry_count_and_contains(self):
        rep = loaded_rep()
        assert rep.entry_count() == 2
        assert rep.contains(wrap("a")) and not rep.contains(wrap("x"))

    def test_entries_between(self):
        rep = loaded_rep()
        assert [e.key.payload for e in rep.entries_between(LOW, HIGH)] == ["a", "c"]


class TestNeighborBatch:
    def test_pred_batch_walks_down(self):
        rep = loaded_rep()
        batch = rep.rep_neighbors_batch(2, wrap("zz"), "pred", 5)
        assert [r.key for r in batch] == [wrap("c"), wrap("a"), LOW]
        rep.abort(2)

    def test_succ_batch_walks_up(self):
        rep = loaded_rep()
        batch = rep.rep_neighbors_batch(2, LOW, "succ", 2)
        assert [r.key for r in batch] == [wrap("a"), wrap("c")]
        rep.abort(2)

    def test_batch_stops_at_sentinel(self):
        rep = loaded_rep()
        batch = rep.rep_neighbors_batch(2, wrap("b"), "pred", 10)
        assert batch[-1].key.is_low
        assert len(batch) == 2
        rep.abort(2)

    def test_batch_validates_args(self):
        rep = loaded_rep()
        with pytest.raises(ValueError):
            rep.rep_neighbors_batch(2, wrap("b"), "sideways", 1)
        with pytest.raises(ValueError):
            rep.rep_neighbors_batch(2, wrap("b"), "pred", 0)

    def test_batch_gap_versions_match_unbatched(self):
        rep = loaded_rep()
        rep.rep_coalesce(2, wrap("a"), wrap("c"), 7)
        rep.commit(2)
        batch = rep.rep_neighbors_batch(3, wrap("c"), "pred", 2)
        single = rep.rep_predecessor(3, wrap("c"))
        assert batch[0] == single
        rep.abort(3)


class TestLocking:
    def test_conflicting_modify_raises_would_block(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("k"), 1, "K")
        with pytest.raises(WouldBlockError) as exc_info:
            rep.rep_insert(3, wrap("k"), 2, "K2")
        assert 2 in exc_info.value.blockers
        rep.abort(2)

    def test_lookup_locks_allow_sharing(self):
        rep = loaded_rep()
        rep.rep_lookup(2, wrap("a"))
        rep.rep_lookup(3, wrap("a"))  # no conflict
        rep.abort(2)
        rep.abort(3)

    def test_predecessor_locks_scanned_range(self):
        # DirRepPredecessor(x) locks [y..x]; an insert into that gap by
        # another transaction must block (phantom protection).
        rep = loaded_rep()
        rep.rep_predecessor(2, wrap("c"))  # locks [a..c]
        with pytest.raises(WouldBlockError):
            rep.rep_insert(3, wrap("b"), 1, "B")
        rep.abort(2)
        rep.rep_insert(3, wrap("b"), 1, "B")  # fine after release
        rep.commit(3)

    def test_commit_releases_locks(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("k"), 1, "K")
        rep.commit(2)
        rep.rep_insert(3, wrap("k"), 2, "K2")
        rep.commit(3)

    def test_locking_disabled_never_blocks(self):
        rep = DirectoryRepresentative("A", locking=False)
        rep.rep_insert(1, wrap("k"), 1, "K")
        rep.rep_insert(2, wrap("k"), 2, "K2")  # would block with locking
        rep.commit(1)
        rep.commit(2)

    def test_coalesce_locks_whole_range(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.commit(2)
        rep.rep_coalesce(3, wrap("a"), wrap("c"), 5)
        with pytest.raises(WouldBlockError):
            rep.rep_lookup(4, wrap("b"))
        rep.abort(3)


class TestAbortUndo:
    def test_abort_reverses_insert(self):
        rep = loaded_rep()
        before = rep.store.snapshot()
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.abort(2)
        assert rep.store.snapshot() == before

    def test_abort_reverses_coalesce(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.commit(2)
        before = rep.store.snapshot()
        rep.rep_coalesce(3, wrap("a"), wrap("c"), 9)
        rep.abort(3)
        assert rep.store.snapshot() == before

    def test_abort_reverses_mixed_ops_in_order(self):
        rep = loaded_rep()
        before = rep.store.snapshot()
        rep.rep_insert(2, wrap("b"), 2, "B")
        rep.rep_coalesce(2, wrap("a"), wrap("c"), 9)
        rep.rep_insert(2, wrap("bb"), 10, "BB")
        rep.abort(2)
        assert rep.store.snapshot() == before
        rep.store.check_invariants()

    def test_aborted_txn_not_replayed(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("zz"), 1, "Z")
        rep.abort(2)
        rep.on_crash()
        rep.on_recover()
        assert not rep.contains(wrap("zz"))


class TestCrashRecovery:
    def test_recovery_restores_committed_state(self):
        rep = loaded_rep()
        before = rep.store.snapshot()
        rep.on_crash()
        assert rep.entry_count() == 0
        rep.on_recover()
        assert rep.store.snapshot() == before

    def test_uncommitted_work_lost_in_crash(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")  # never committed
        rep.on_crash()
        rep.on_recover()
        assert not rep.contains(wrap("b"))
        assert rep.contains(wrap("a"))

    def test_prepare_votes_no_for_unseen_txn(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.on_crash()
        rep.on_recover()
        assert rep.prepare(2) is False  # effects were lost

    def test_prepare_votes_yes_for_seen_txn(self):
        rep = loaded_rep()
        rep.rep_insert(2, wrap("b"), 1, "B")
        assert rep.prepare(2) is True

    def test_in_doubt_resolved_by_decision_log(self):
        decisions = set()
        rep = DirectoryRepresentative(
            "A", decision_outcomes=lambda: frozenset(decisions)
        )
        rep.rep_insert(5, wrap("k"), 1, "K")
        rep.prepare(5)
        rep.on_crash()
        rep.on_recover()
        assert not rep.contains(wrap("k"))  # presumed abort
        decisions.add(5)
        rep.on_crash()
        rep.on_recover()
        assert rep.contains(wrap("k"))  # coordinator says commit

    def test_recovery_with_btree_store(self):
        rep = DirectoryRepresentative("A", store_factory=BTreeStore)
        rep.rep_insert(1, wrap("x"), 1, "X")
        rep.commit(1)
        before = rep.store.snapshot()
        rep.on_crash()
        rep.on_recover()
        assert rep.store.snapshot() == before


class TestCheckpointing:
    def test_policy_triggers_checkpoint(self):
        rep = DirectoryRepresentative("A", checkpoint_policy=EveryNCommits(2))
        rep.rep_insert(1, wrap("a"), 1, "A")
        rep.commit(1)
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.commit(2)
        # After the 2nd commit the log should have been folded.
        kinds = [r.kind for r in rep.wal]
        assert kinds[0] == "checkpoint"

    def test_recovery_after_checkpoint(self):
        rep = DirectoryRepresentative("A", checkpoint_policy=EveryNCommits(1))
        rep.rep_insert(1, wrap("a"), 1, "A")
        rep.commit(1)
        rep.rep_insert(2, wrap("b"), 1, "B")
        rep.commit(2)
        before = rep.store.snapshot()
        rep.on_crash()
        rep.on_recover()
        assert rep.store.snapshot() == before

    def test_manual_checkpoint_requires_quiescence(self):
        rep = DirectoryRepresentative("A")
        rep.rep_insert(1, wrap("a"), 1, "A")
        with pytest.raises(RuntimeError):
            rep.checkpoint()
        rep.commit(1)
        rep.checkpoint()
        assert len(rep.wal) == 1
