"""Structural tests specific to the B-tree store.

Semantics shared with SortedStore are covered by test_sorted_store.py's
parameterized fixture; these tests exercise the tree mechanics — splits,
borrows, merges, root shrink, bulk restore — and verify structure after
every phase via ``check_invariants``.
"""

import random

import pytest

from repro.core.keys import wrap
from repro.storage.btree import BTreeStore, _Internal, _Leaf
from repro.storage.sorted_store import SortedStore


def tree_height(store: BTreeStore) -> int:
    node = store._root
    height = 0
    while isinstance(node, _Internal):
        node = node.children[0]
        height += 1
    return height


class TestConstruction:
    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BTreeStore(order=3)

    def test_small_order_accepted(self):
        BTreeStore(order=4).check_invariants()

    def test_initial_gap_version(self):
        store = BTreeStore(initial_gap_version=7)
        assert store.lookup(wrap("x")).version == 7


class TestGrowth:
    def test_splits_increase_height(self):
        store = BTreeStore(order=4)
        assert tree_height(store) == 0
        for i in range(50):
            store.insert(wrap(i), 1, i)
            store.check_invariants()
        assert tree_height(store) >= 2
        assert store.entry_count() == 50

    def test_ascending_and_descending_inserts(self):
        for keys in (range(100), range(100, 0, -1)):
            store = BTreeStore(order=4)
            for k in keys:
                store.insert(wrap(k), 1, k)
            store.check_invariants()
            payloads = [e.key.payload for e in store.user_entries()]
            assert payloads == sorted(payloads)

    def test_iteration_order_after_splits(self):
        store = BTreeStore(order=4)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for k in keys:
            store.insert(wrap(k), 1, k)
        assert [e.key.payload for e in store.user_entries()] == list(range(200))


class TestShrink:
    def test_coalesce_everything_shrinks_to_leaf_root(self):
        store = BTreeStore(order=4)
        for i in range(100):
            store.insert(wrap(i), 1, i)
        from repro.core.keys import HIGH, LOW

        store.coalesce(LOW, HIGH, 5)
        store.check_invariants()
        assert store.entry_count() == 0
        assert tree_height(store) == 0

    def test_interleaved_insert_delete_rebalances(self):
        store = BTreeStore(order=4)
        rng = random.Random(11)
        present = set()
        for i in range(2000):
            k = rng.randint(0, 300)
            if k in present and rng.random() < 0.5:
                store.remove_entry(wrap(k), i)
                present.remove(k)
            elif k not in present:
                store.insert(wrap(k), i, k)
                present.add(k)
            if i % 50 == 0:
                store.check_invariants()
        store.check_invariants()
        assert store.entry_count() == len(present)

    def test_height_decreases_after_mass_removal(self):
        store = BTreeStore(order=4)
        for i in range(300):
            store.insert(wrap(i), 1, i)
        tall = tree_height(store)
        for i in range(1, 300):
            store.remove_entry(wrap(i), 2)
        store.check_invariants()
        assert tree_height(store) < tall


class TestBulkRestore:
    @pytest.mark.parametrize("n", [0, 1, 15, 16, 17, 100, 257])
    def test_restore_sizes(self, n):
        source = SortedStore()
        for i in range(n):
            source.insert(wrap(i), 1, i)
        store = BTreeStore(order=16)
        store.restore(source.snapshot())
        store.check_invariants()
        assert store.snapshot() == source.snapshot()

    def test_restore_preserves_gap_versions(self):
        source = SortedStore()
        for i in range(20):
            source.insert(wrap(i), 1, i)
        source.coalesce(wrap(3), wrap(9), 42)
        store = BTreeStore(order=4)
        store.restore(source.snapshot())
        assert store.lookup(wrap(5)).version == 42

    def test_restore_then_mutate(self):
        source = SortedStore()
        for i in range(64):
            source.insert(wrap(i), 1, i)
        store = BTreeStore(order=8)
        store.restore(source.snapshot())
        for i in range(64, 128):
            store.insert(wrap(i), 1, i)
        store.check_invariants()
        assert store.entry_count() == 128


class TestGapFieldPlacement:
    def test_gap_stored_with_bounding_entry(self):
        # Section 5: "Version numbers for gaps could be stored in fields
        # in their bounding entries" — verify the leaf layout does that.
        store = BTreeStore(order=4)
        store.insert(wrap("a"), 1, "A")
        store.insert(wrap("c"), 1, "C")
        store.coalesce(wrap("a"), wrap("c"), 9)
        leaf, idx = store._floor_position(wrap("a"))
        assert isinstance(leaf, _Leaf)
        assert leaf.gaps[idx] == 9

    def test_gap_travels_with_entry_across_splits(self):
        store = BTreeStore(order=4)
        for i in range(0, 40, 2):
            store.insert(wrap(i), 1, i)
        store.coalesce(wrap(10), wrap(12), 77)
        for i in range(40, 120, 2):  # force many splits
            store.insert(wrap(i), 1, i)
        assert store.lookup(wrap(11)).version == 77


class TestDifferential:
    def test_random_ops_match_sorted_store(self):
        rng = random.Random(99)
        a, b = SortedStore(), BTreeStore(order=4)
        for i in range(4000):
            op = rng.random()
            k = wrap(rng.randint(0, 150))
            if op < 0.55:
                assert a.insert(k, i, i) == b.insert(k, i, i)
            elif op < 0.75:
                entries = [e.key for e in a.iter_entries()]
                ia = rng.randrange(len(entries) - 1)
                ib = rng.randrange(ia + 1, len(entries))
                ra = a.coalesce(entries[ia], entries[ib], i)
                rb = b.coalesce(entries[ia], entries[ib], i)
                assert ra == rb
            elif op < 0.9:
                assert a.lookup(k) == b.lookup(k)
                if not k.is_low:
                    assert a.predecessor(k) == b.predecessor(k)
                if not k.is_high:
                    assert a.successor(k) == b.successor(k)
            elif a.contains(k) and not k.is_sentinel:
                assert a.remove_entry(k, i) == b.remove_entry(k, i)
            assert a.snapshot() == b.snapshot()
        b.check_invariants()
