"""Unit tests for transactions, the manager, and two-phase commit."""

import pytest

from repro.core.errors import (
    InvalidTransactionStateError,
    NodeDownError,
    TransactionAbortedError,
    TwoPhaseCommitError,
)
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint
from repro.txn.ids import TxnIdGenerator
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TxnState
from repro.txn.twopc import DecisionLog, TwoPhaseCoordinator
from repro.txn.transaction import Participant


class _Participant:
    """A scriptable 2PC participant service."""

    def __init__(self, vote=True):
        self.vote = vote
        self.prepared = []
        self.committed = []
        self.aborted = []

    def prepare(self, txn_id):
        self.prepared.append(txn_id)
        return self.vote

    def commit(self, txn_id):
        self.committed.append(txn_id)

    def abort(self, txn_id):
        self.aborted.append(txn_id)


def make_cluster(votes):
    """Network of participant services with given vote behaviours."""
    net = Network()
    rpc = RpcEndpoint(net, origin="client")
    services = {}
    participants = {}
    for i, vote in enumerate(votes):
        name = f"p{i}"
        node = net.add_node(f"node-{i}")
        svc = _Participant(vote)
        node.host("svc", svc)
        services[name] = svc
        participants[name] = Participant(f"node-{i}", "svc")
    return net, rpc, services, participants


class TestTxnIds:
    def test_monotone(self):
        gen = TxnIdGenerator()
        ids = [gen.next_id() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_zero_start_rejected(self):
        with pytest.raises(ValueError):
            TxnIdGenerator(start=0)


class TestTransaction:
    def test_enlist_records_participants(self):
        txn = Transaction(1)
        txn.enlist("A", "node-A", "dir:A")
        txn.enlist("A", "node-A", "dir:A")  # idempotent
        assert list(txn.participants) == ["A"]

    def test_enlist_after_finish_rejected(self):
        txn = Transaction(1, state=TxnState.COMMITTED)
        with pytest.raises(InvalidTransactionStateError):
            txn.enlist("A", "n", "s")

    def test_is_finished(self):
        assert not Transaction(1).is_finished
        assert Transaction(1, state=TxnState.ABORTED).is_finished


class TestDecisionLog:
    def test_decide_and_outcome(self):
        log = DecisionLog()
        log.decide(1, "commit")
        assert log.outcome(1) == "commit"
        assert log.outcome(2) is None

    def test_conflicting_decision_rejected(self):
        log = DecisionLog()
        log.decide(1, "commit")
        with pytest.raises(ValueError):
            log.decide(1, "abort")

    def test_repeated_same_decision_ok(self):
        log = DecisionLog()
        log.decide(1, "abort")
        log.decide(1, "abort")

    def test_bad_decision_rejected(self):
        with pytest.raises(ValueError):
            DecisionLog().decide(1, "maybe")

    def test_committed_ids(self):
        log = DecisionLog()
        log.decide(1, "commit")
        log.decide(2, "abort")
        log.decide(3, "commit")
        assert log.committed_ids() == frozenset({1, 3})


class TestTwoPhaseCoordinator:
    def test_all_yes_commits(self):
        net, rpc, services, participants = make_cluster([True, True])
        coordinator = TwoPhaseCoordinator(rpc, DecisionLog())
        outcome = coordinator.commit(7, participants)
        assert outcome.committed
        for svc in services.values():
            assert svc.committed == [7]
            assert svc.aborted == []

    def test_one_no_vote_aborts_all(self):
        net, rpc, services, participants = make_cluster([True, False])
        coordinator = TwoPhaseCoordinator(rpc, DecisionLog())
        outcome = coordinator.commit(7, participants)
        assert not outcome.committed
        for svc in services.values():
            assert svc.aborted == [7]
            assert svc.committed == []

    def test_unreachable_participant_forces_abort(self):
        net, rpc, services, participants = make_cluster([True, True])
        net.node("node-1").crash()
        coordinator = TwoPhaseCoordinator(rpc, DecisionLog())
        outcome = coordinator.commit(7, participants)
        assert not outcome.committed
        assert outcome.votes["p1"] is False

    def test_decision_durable_before_completion(self):
        net, rpc, services, participants = make_cluster([True, True])
        log = DecisionLog()
        coordinator = TwoPhaseCoordinator(rpc, log)
        coordinator.commit(7, participants)
        assert log.outcome(7) == "commit"

    def test_participant_lost_in_phase_two_reported(self):
        net, rpc, services, participants = make_cluster([True, True])
        # Crash p1 after its prepare: monkeypatch prepare to crash the node.
        original = services["p1"].prepare

        def prepare_then_crash(txn_id):
            result = original(txn_id)
            net.node("node-1").crash()
            return result

        services["p1"].prepare = prepare_then_crash
        coordinator = TwoPhaseCoordinator(rpc, DecisionLog())
        outcome = coordinator.commit(7, participants)
        assert outcome.committed  # decision stands
        assert outcome.unreachable_at_completion == ("p1",)

    def test_abort_returns_unreachable(self):
        net, rpc, services, participants = make_cluster([True, True])
        net.node("node-0").crash()
        coordinator = TwoPhaseCoordinator(rpc, DecisionLog())
        unreachable = coordinator.abort(7, participants)
        assert unreachable == ("p0",)
        assert services["p1"].aborted == [7]


class TestTransactionManager:
    def _manager(self, votes):
        net, rpc, services, participants = make_cluster(votes)
        manager = TransactionManager(rpc)
        return net, manager, services, participants

    def test_begin_assigns_unique_ids(self):
        _net, manager, _svcs, _parts = self._manager([True])
        t1, t2 = manager.begin(), manager.begin()
        assert t1.txn_id != t2.txn_id
        assert len(manager.live_transactions()) == 2

    def test_commit_success_path(self):
        _net, manager, services, participants = self._manager([True, True])
        txn = manager.begin()
        for name, part in participants.items():
            txn.enlist(name, part.node_id, part.service_name)
        manager.commit(txn)
        assert txn.state is TxnState.COMMITTED
        assert manager.commits == 1
        assert manager.live_transactions() == []

    def test_commit_failure_raises_and_aborts(self):
        _net, manager, services, participants = self._manager([True, False])
        txn = manager.begin()
        for name, part in participants.items():
            txn.enlist(name, part.node_id, part.service_name)
        with pytest.raises(TwoPhaseCommitError):
            manager.commit(txn)
        assert txn.state is TxnState.ABORTED
        assert manager.aborts == 1

    def test_abort_idempotent(self):
        _net, manager, _svcs, _parts = self._manager([True])
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)  # second abort is a no-op
        assert manager.aborts == 1

    def test_abort_committed_rejected(self):
        _net, manager, _svcs, participants = self._manager([True])
        txn = manager.begin()
        txn.enlist("p0", participants["p0"].node_id, "svc")
        manager.commit(txn)
        with pytest.raises(InvalidTransactionStateError):
            manager.abort(txn)

    def test_abort_and_raise(self):
        _net, manager, _svcs, _parts = self._manager([True])
        txn = manager.begin()
        with pytest.raises(TransactionAbortedError):
            manager.abort_and_raise(txn, "test reason")

    def test_deadlock_detection_wiring(self):
        from repro.core.keys import KeyRange
        from repro.txn.locks import LockMode, LockTable

        _net, manager, _svcs, _parts = self._manager([True])
        t1, t2 = LockTable(), LockTable()
        t1.acquire(1, LockMode.REP_MODIFY, KeyRange.of(1, 2))
        t2.acquire(2, LockMode.REP_MODIFY, KeyRange.of(5, 6))
        t1.acquire(2, LockMode.REP_MODIFY, KeyRange.of(1, 2))
        t2.acquire(1, LockMode.REP_MODIFY, KeyRange.of(5, 6))
        found = manager.run_deadlock_detection([t1, t2])
        assert found is not None
        _cycle, victim = found
        assert victim == 2
