"""Unit tests for the load generator's redesigned configuration surface.

:class:`LoadSpec` is the one value a load run needs; the loose-kwargs
``run_load(host, port, ops=...)`` form survives as a deprecated shim.
The socket-driving paths themselves are exercised end to end by the
service integration tests and ``benchmarks/bench_service.py``; here we
pin the pure parts — validation, open/closed mode selection, and the
deprecation contract.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.service.loadgen import DEFAULT_MIX, LoadSpec, run_load


class TestLoadSpec:
    def test_defaults_are_closed_loop(self):
        spec = LoadSpec()
        assert spec.mix == DEFAULT_MIX
        assert not spec.open_loop
        assert spec.rate_points() == ()
        assert spec.pipeline == 1

    def test_rate_selects_open_loop(self):
        spec = LoadSpec(rate=500.0)
        assert spec.open_loop
        assert spec.rate_points() == (500.0,)

    def test_rates_sweep_wins_over_rate(self):
        spec = LoadSpec(rate=500.0, rates=[100, 200])
        assert spec.open_loop
        assert spec.rate_points() == (100, 200)
        assert isinstance(spec.rates, tuple)  # coerced, hashable

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LoadSpec().ops = 1

    @pytest.mark.parametrize(
        "bad",
        [
            {"ops": 0},
            {"connections": 0},
            {"keyspace": 0},
            {"mix": (0.5, 0.5, 0.5)},
            {"mix": (1.0, 0.0)},
            {"hot_fraction": 1.5},
            {"hot_keys": 0},
            {"pipeline": 0},
            {"rate": 0},
            {"rate": -5.0},
            {"rates": ()},
            {"rates": (100, -1)},
            {"duration": 0},
        ],
        ids=lambda bad: next(iter(bad)),
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            LoadSpec(**bad)


class TestRunLoadSurface:
    def test_spec_plus_keywords_rejected(self):
        with pytest.raises(TypeError, match="inside the LoadSpec"):
            run_load(LoadSpec(), ops=10)
        with pytest.raises(TypeError, match="inside the LoadSpec"):
            run_load(LoadSpec(), 7379)

    def test_unknown_legacy_option_rejected(self):
        with pytest.raises(TypeError, match="unknown load option"):
            run_load("127.0.0.1", 7379, opz=10)

    def test_legacy_kwargs_warn_then_build_a_spec(self):
        # Port 1 refuses connections immediately: the shim must have
        # warned (and validated) before any socket work begins.
        with pytest.warns(DeprecationWarning, match="LoadSpec"):
            with pytest.raises(OSError):
                run_load("127.0.0.1", 1, ops=1, connections=1)

    def test_legacy_kwargs_validate_like_the_spec(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="pipeline"):
                run_load("127.0.0.1", 1, pipeline=0)
