"""Unit tests for the BENCH telemetry schema (repro.obs.bench)."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_path,
    bench_payload,
    compare_benches,
    format_comparison,
    load_bench,
    validate_bench,
    write_bench,
)


def make_payload(**over):
    base = dict(
        name="driver",
        workload={"operations": 100, "seed": 0},
        messages={"messages": 900, "rpc_rounds": 300},
        latency={"phases": {"rpc": {"avg": 2.0, "p99": 6.0, "n": 100}}},
        audit={"runs": 1, "violations": 0},
        extra={"sim_ticks": 123.0},
        created=1_700_000_000.0,
    )
    base.update(over)
    return bench_payload(**base)


class TestPayload:
    def test_shape(self):
        payload = make_payload()
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["name"] == "driver"
        assert payload["created"] == 1_700_000_000.0
        validate_bench(payload)

    def test_created_defaults_to_now(self):
        assert make_payload(created=None)["created"] > 0

    def test_audit_may_be_null(self):
        validate_bench(make_payload(audit=None))

    def test_json_round_trips(self):
        payload = make_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestValidate:
    def test_rejects_wrong_schema(self):
        payload = make_payload()
        payload["schema"] = "repro-bench/0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench(payload)

    def test_rejects_missing_name(self):
        payload = make_payload()
        payload["name"] = ""
        with pytest.raises(ValueError):
            validate_bench(payload)

    def test_rejects_non_dict_section(self):
        payload = make_payload()
        payload["messages"] = [1, 2]
        with pytest.raises(ValueError, match="messages"):
            validate_bench(payload)

    def test_rejects_non_dict_audit(self):
        payload = make_payload()
        payload["audit"] = 7
        with pytest.raises(ValueError, match="audit"):
            validate_bench(payload)


class TestFiles:
    def test_bench_path_naming(self, tmp_path):
        assert bench_path("rpc_rounds", tmp_path).name == "BENCH_rpc_rounds.json"

    def test_write_load_round_trip(self, tmp_path):
        payload = make_payload()
        path = write_bench(payload, directory=tmp_path)
        assert path.name == "BENCH_driver.json"
        assert load_bench(path) == payload

    def test_load_validates(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            load_bench(path)


class TestCompare:
    def test_identical_has_no_regressions(self):
        payload = make_payload()
        assert compare_benches(payload, payload) == []

    def test_flags_regression_over_tolerance(self):
        base = make_payload()
        cand = make_payload(messages={"messages": 1000, "rpc_rounds": 300})
        (reg,) = compare_benches(base, cand)
        assert reg["path"] == "messages.messages"
        assert reg["ratio"] == pytest.approx(1000 / 900)

    def test_improvement_and_small_noise_ignored(self):
        base = make_payload()
        cand = make_payload(
            messages={"messages": 880, "rpc_rounds": 309}  # -2%, +3%
        )
        assert compare_benches(base, cand) == []

    def test_tolerance_knob(self):
        base = make_payload()
        cand = make_payload(messages={"messages": 927, "rpc_rounds": 300})
        assert compare_benches(base, cand) == []            # +3% < 5%
        assert compare_benches(base, cand, tolerance=0.02)  # +3% > 2%

    def test_sample_count_leaves_skipped(self):
        base = make_payload()
        cand = make_payload(
            latency={"phases": {"rpc": {"avg": 2.0, "p99": 6.0, "n": 999}}}
        )
        assert compare_benches(base, cand) == []

    def test_nested_latency_leaves_compared(self):
        base = make_payload()
        cand = make_payload(
            latency={"phases": {"rpc": {"avg": 2.0, "p99": 9.0, "n": 100}}}
        )
        (reg,) = compare_benches(base, cand)
        assert reg["path"] == "latency.phases.rpc.p99"

    def test_missing_and_zero_leaves_ignored(self):
        base = make_payload(messages={"messages": 0, "gone": 5})
        cand = make_payload(messages={"messages": 10, "new": 5})
        assert compare_benches(base, cand) == []

    def test_audit_and_extra_sections_not_compared(self):
        base = make_payload()
        cand = make_payload(
            audit={"runs": 99, "violations": 0}, extra={"sim_ticks": 999.0}
        )
        assert compare_benches(base, cand) == []

    def test_sorted_worst_first(self):
        base = make_payload()
        cand = make_payload(messages={"messages": 1800, "rpc_rounds": 330})
        paths = [r["path"] for r in compare_benches(base, cand)]
        assert paths == ["messages.messages", "messages.rpc_rounds"]


class TestFormatComparison:
    def test_clean(self):
        payload = make_payload()
        text = format_comparison(payload, payload, [], tolerance=0.05)
        assert "no regressions" in text

    def test_regression_lines(self):
        base = make_payload()
        cand = make_payload(messages={"messages": 1000, "rpc_rounds": 300})
        regs = compare_benches(base, cand)
        text = format_comparison(base, cand, regs, tolerance=0.05)
        assert "messages.messages" in text
        assert "1 regression" in text
