"""Conformance: every registered implementation honors the Directory contract.

One operation sequence, every implementation in the registry — the suite,
the retrying front-end, the sharded directory, and all the baselines.
Keys are floats in [0, 1) because two implementations partition that key
space (static-partitioned and the range-sharded directory); that choice
costs the others nothing.
"""

from __future__ import annotations

import pytest

from repro.core.errors import KeyAlreadyPresentError, KeyNotPresentError
from repro.core.interface import (
    Directory,
    directory_factories,
    register_directory,
)

FACTORIES = directory_factories()

#: Every implementation the codebase registers; keep in sync with the
#: registration blocks in repro.cluster, repro.shard.sharded, and
#: repro.baselines.  Listed explicitly so a silently lost registration
#: fails this module rather than shrinking the matrix.
EXPECTED = {
    "suite",
    "resilient",
    "sharded-range",
    "sharded-hash",
    "directory-as-file",
    "unanimous",
    "primary-copy",
    "naive-consult",
    "tombstone",
    "static-partitioned",
}


def test_registry_covers_every_implementation():
    assert set(FACTORIES) == EXPECTED


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def directory(request):
    return FACTORIES[request.param]()


def test_satisfies_the_protocol(directory):
    assert isinstance(directory, Directory)


def test_conformance_sequence(directory):
    d = directory

    # Empty directory.
    assert d.size() == 0
    assert d.lookup(0.25) == (False, None)

    # Inserts become visible; size tracks.
    d.insert(0.25, "a")
    d.insert(0.75, "b")
    d.insert(0.5, "c")
    assert d.lookup(0.25) == (True, "a")
    assert d.lookup(0.75) == (True, "b")
    assert d.size() == 3

    # Update overwrites in place.
    d.update(0.25, "a2")
    assert d.lookup(0.25) == (True, "a2")
    assert d.size() == 3

    # Error contract: insert-present.
    with pytest.raises(KeyAlreadyPresentError):
        d.insert(0.25, "dup")
    assert d.lookup(0.25) == (True, "a2")

    # Delete removes exactly the target.
    d.delete(0.75)
    assert d.lookup(0.75) == (False, None)
    assert d.lookup(0.25) == (True, "a2")
    assert d.size() == 2

    # Error contract: update/delete-absent.
    with pytest.raises(KeyNotPresentError):
        d.update(0.75, "x")
    with pytest.raises(KeyNotPresentError):
        d.delete(0.75)

    # Reinsert after delete — the paper's hard case (stale copies must
    # not resurrect the old incarnation).
    d.insert(0.75, "b2")
    assert d.lookup(0.75) == (True, "b2")
    assert d.size() == 3

    # Values are opaque: None is a legal stored value, distinct from absent.
    d.insert(0.1, None)
    assert d.lookup(0.1) == (True, None)
    d.delete(0.1)
    assert d.lookup(0.1) == (False, None)


def test_lifecycle_contract(directory):
    # Every implementation is a context manager whose exit closes it,
    # and close is idempotent.
    with directory as d:
        assert d is directory
        d.insert(0.5, "x")
        assert d.lookup(0.5) == (True, "x")
    directory.close()
    directory.close()


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_directory("suite", lambda: None)


def test_register_replace_allows_override_and_restores():
    original = FACTORIES["suite"]
    register_directory("suite", original, replace=True)
    assert directory_factories()["suite"] is original
