"""Unit tests for the quorum-configuration planner."""

import pytest

from repro.sim.planner import cheapest_within, enumerate_plans, most_available


class TestEnumeration:
    def test_all_plans_legal(self):
        for pt in enumerate_plans(5, 0.9):
            assert pt.read_quorum + pt.write_quorum > 5
            assert 2 * pt.write_quorum > 5

    def test_single_replica(self):
        plans = enumerate_plans(1, 0.9)
        assert len(plans) == 1
        assert plans[0].spec == "1-1-1"

    def test_counts_match_constraints(self):
        # n=3: legal (R,W) with R+W>3 and W>=2: (1,3) (2,2) (2,3) (3,2) (3,3).
        specs = {pt.spec for pt in enumerate_plans(3, 0.9)}
        assert specs == {"3-1-3", "3-2-2", "3-2-3", "3-3-2", "3-3-3"}

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            enumerate_plans(3, 1.5)
        with pytest.raises(ValueError):
            enumerate_plans(3, 0.9, read_fraction=-0.1)

    def test_availability_values_consistent(self):
        plans = {pt.spec: pt for pt in enumerate_plans(3, 0.9)}
        # Read-one is maximally read-available.
        assert plans["3-1-3"].read_availability == pytest.approx(1 - 0.1**3)
        # Write-all is 0.9^3 write-available.
        assert plans["3-1-3"].write_availability == pytest.approx(0.9**3)

    def test_access_cost_model(self):
        plans = {pt.spec: pt for pt in enumerate_plans(3, 0.9)}
        pt = plans["3-2-2"]
        # read_fraction 0.5: 0.5*2 + 0.5*(2+2) = 3 accesses per op.
        assert pt.accesses_per_operation == pytest.approx(3.0)


class TestSelectors:
    def test_most_available_balances_quorums(self):
        # At a 50/50 mix, the balanced majority configuration wins for
        # odd n at high p (both quorums survive any single failure).
        best = most_available(5, 0.9, read_fraction=0.5)
        assert (best.read_quorum, best.write_quorum) == (3, 3)

    def test_read_heavy_mix_prefers_small_read_quorum(self):
        best = most_available(5, 0.9, read_fraction=0.99)
        assert best.read_quorum <= 2

    def test_cheapest_within_trades_availability_for_cost(self):
        cheap = cheapest_within(5, 0.9, read_fraction=0.5, availability_slack=0.05)
        best = most_available(5, 0.9, read_fraction=0.5)
        assert cheap.accesses_per_operation <= best.accesses_per_operation
        assert (
            cheap.operation_availability
            >= best.operation_availability - 0.05
        )

    def test_zero_slack_returns_best(self):
        cheap = cheapest_within(3, 0.9, availability_slack=0.0)
        best = most_available(3, 0.9)
        assert cheap.operation_availability == pytest.approx(
            best.operation_availability
        )

    def test_unreliable_nodes_change_the_answer(self):
        # At p = 0.99 write-all barely hurts; at p = 0.6 it is ruinous,
        # so the best write quorum shrinks toward the majority.
        flaky = most_available(5, 0.6, read_fraction=0.0)
        solid = most_available(5, 0.99, read_fraction=0.0)
        assert flaky.write_quorum <= solid.write_quorum or (
            flaky.write_quorum == 3
        )
        assert flaky.write_quorum == 3  # majority is optimal for writes
