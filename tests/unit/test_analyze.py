"""Unit tests for the trace-analytics engine (repro.obs.analyze)."""

import pytest

from repro.obs.analyze import (
    PHASES,
    TraceProfile,
    critical_path,
    format_critical_path,
    iter_op_spans,
    phase_of,
    profile_spans,
    self_time,
)
from repro.obs.spans import Span

_IDS = iter(range(1, 10_000))


def span(name, start, end, children=(), status="ok", **attrs):
    """Hand-build a sealed span."""
    return Span(
        name,
        next(_IDS),
        start=start,
        end=end,
        status=status,
        attrs=dict(attrs),
        children=list(children),
    )


class TestPhaseOf:
    def test_quorum_spans(self):
        assert phase_of(span("quorum:read", 0, 1)) == "quorum-select"
        assert phase_of(span("quorum:write", 0, 1)) == "quorum-select"

    def test_ordinary_rpc(self):
        assert phase_of(span("rpc:dir:A.rep_lookup", 0, 1)) == "rpc"
        assert phase_of(span("rpc:dir:B.rep_insert", 0, 1)) == "rpc"

    def test_two_phase_commit_rpcs(self):
        for method in ("prepare", "commit", "abort"):
            assert phase_of(span(f"rpc:dir:A.{method}", 0, 1)) == "commit"

    def test_rep_side(self):
        assert phase_of(span("rep:A.rep_coalesce", 0, 1)) == "rep-side"
        # Representative work during 2PC is still rep-side work.
        assert phase_of(span("rep:A.prepare", 0, 1)) == "rep-side"

    def test_roots_are_client(self):
        assert phase_of(span("op:delete", 0, 1)) == "client"
        assert phase_of(span("retry:insert", 0, 1)) == "client"

    def test_all_phases_enumerated(self):
        names = [
            "quorum:read",
            "rpc:dir:A.rep_lookup",
            "rep:A.rep_lookup",
            "rpc:dir:A.commit",
            "op:insert",
        ]
        assert {phase_of(span(n, 0, 1)) for n in names} == set(PHASES)


class TestSelfTime:
    def test_leaf_self_time_is_duration(self):
        assert self_time(span("rep:A.x", 2.0, 7.0)) == 5.0

    def test_children_subtracted(self):
        child = span("rep:A.x", 1.0, 4.0)
        parent = span("rpc:dir:A.x", 0.0, 10.0, children=[child])
        assert self_time(parent) == 7.0

    def test_never_negative(self):
        child = span("rep:A.x", 0.0, 5.0)
        parent = span("rpc:dir:A.x", 0.0, 3.0, children=[child])
        assert self_time(parent) == 0.0


class TestCriticalPath:
    def test_descends_into_longest_child(self):
        short = span("rpc:dir:A.rep_lookup", 0, 2)
        deep_leaf = span("rep:B.rep_lookup", 2, 9)
        long = span("rpc:dir:B.rep_lookup", 2, 10, children=[deep_leaf])
        root = span("op:lookup", 0, 10, children=[short, long])
        path = critical_path(root)
        assert [s.name for s in path] == [
            "op:lookup",
            "rpc:dir:B.rep_lookup",
            "rep:B.rep_lookup",
        ]

    def test_single_span_path(self):
        root = span("op:lookup", 0, 1)
        assert critical_path(root) == [root]

    def test_format_renders_one_line_per_hop(self):
        leaf = span("rep:A.x", 0, 1)
        root = span("op:lookup", 0, 2, children=[leaf])
        text = format_critical_path(critical_path(root))
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("op:lookup")
        assert "rep:A.x" in lines[1]


def build_op(kind="lookup", start=0.0, failed=False):
    """One realistic operation tree: quorum, two rpcs, one commit."""
    t = start
    rep1 = span("rep:A.rep_lookup", t + 2, t + 3, wal_records=0)
    rpc1 = span(
        "rpc:dir:A.rep_lookup", t + 1, t + 4, children=[rep1], messages=2
    )
    rep2 = span("rep:B.rep_lookup", t + 5, t + 6)
    rpc2 = span(
        "rpc:dir:B.rep_lookup",
        t + 4,
        t + 7,
        children=[rep2],
        messages=2,
        attempt=1,
    )
    quorum = span("quorum:read", t + 0.5, t + 1, members=["A", "B"])
    commit = span("rpc:dir:A.commit", t + 7, t + 9, messages=2)
    return span(
        f"op:{kind}",
        t,
        t + 10,
        children=[quorum, rpc1, rpc2, commit],
        status="QuorumUnavailableError" if failed else "ok",
    )


class TestProfileSpans:
    def test_per_op_stats(self):
        profile = profile_spans([build_op(), build_op(start=100.0)])
        op = profile.ops["lookup"]
        assert op.count == 2
        assert op.failed == 0
        assert op.latency.avg == 10.0
        assert op.rpc_rounds.avg == 3.0
        assert op.messages.avg == 6.0
        assert profile.total_rpc_rounds == 6
        assert profile.total_messages == 12

    def test_phases_tile_the_latency(self):
        profile = profile_spans([build_op()])
        total = sum(stat.avg for stat in profile.phases.values())
        assert total == pytest.approx(10.0)
        assert profile.phases["quorum-select"].avg == pytest.approx(0.5)
        assert profile.phases["commit"].avg == pytest.approx(2.0)
        assert profile.phases["rep-side"].avg == pytest.approx(2.0)
        # rpc self time: (3-1) + (3-1) = 4.
        assert profile.phases["rpc"].avg == pytest.approx(4.0)
        assert profile.phases["client"].avg == pytest.approx(1.5)

    def test_attempt_counts(self):
        profile = profile_spans([build_op()])
        assert profile.rpc_attempts == {0: 2, 1: 1}
        assert profile.retried_rpcs == 1

    def test_failed_ops_counted(self):
        profile = profile_spans([build_op(failed=True)])
        assert profile.ops["lookup"].failed == 1

    def test_retry_roots_yield_nested_ops(self):
        inner = build_op(kind="insert")
        retry_root = span(
            "retry:insert", 0, 12, children=[inner], attempts=1
        )
        assert [s.name for s in iter_op_spans([retry_root])] == ["op:insert"]
        profile = profile_spans([retry_root])
        assert profile.ops["insert"].count == 1

    def test_percentiles_available(self):
        profile = profile_spans(
            [build_op(start=float(i) * 100) for i in range(10)]
        )
        assert profile.ops["lookup"].latency.percentile(50) == 10.0

    def test_report_renders_tables(self):
        profile = profile_spans([build_op()])
        text = profile.report()
        assert "Per-operation simulated latency" in text
        assert "Per-phase self time" in text
        assert "p99" in text
        assert "retry#1=1" in text

    def test_empty_profile(self):
        profile = profile_spans([])
        assert isinstance(profile, TraceProfile)
        assert profile.operation_count == 0
        assert profile.report()  # renders without raising

    def test_summary_is_json_shaped(self):
        import json

        summary = profile_spans([build_op()]).summary()
        text = json.dumps(summary)
        assert "phases" in summary and "ops" in summary
        assert summary["rpc_attempts"] == {"0": 2, "1": 1}
        assert json.loads(text)["operations"] == 1
