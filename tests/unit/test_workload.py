"""Unit tests for workload generators."""

import pytest

from repro.sim.workload import (
    LocalityWorkload,
    OpMix,
    Operation,
    UniformWorkload,
    ZipfWorkload,
)


class TestOpMix:
    def test_defaults_balanced(self):
        mix = OpMix()
        kinds, weights = mix.kinds_and_weights()
        assert kinds == ["insert", "update", "delete", "lookup"]
        assert weights == [1.0, 1.0, 1.0, 0.0]

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            OpMix(insert=0, update=0, delete=0, lookup=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpMix(insert=-1)


class TestUniformWorkload:
    def test_initial_load_count_and_uniqueness(self):
        w = UniformWorkload(seed=1)
        ops = w.initial_load(100)
        assert len(ops) == 100
        assert all(op.kind == "insert" for op in ops)
        assert len({op.key for op in ops}) == 100
        assert w.size == 100

    def test_fresh_keys_never_collide(self):
        w = UniformWorkload(seed=2)
        w.initial_load(50)
        members = set(w.members())
        for _ in range(200):
            assert w.fresh_key() not in members

    def test_existing_key_from_membership(self):
        w = UniformWorkload(seed=3)
        w.initial_load(20)
        members = set(w.members())
        for _ in range(50):
            assert w.existing_key() in members

    def test_existing_key_empty_directory(self):
        assert UniformWorkload(seed=4).existing_key() is None

    def test_size_random_walks_around_target(self):
        w = UniformWorkload(target_size=200, seed=5)
        w.initial_load(200)
        for _ in w.operations(5000):
            pass
        # Balanced insert/delete: size stays within a few std devs.
        assert 80 < w.size < 350

    def test_updates_and_deletes_target_members(self):
        w = UniformWorkload(seed=6)
        w.initial_load(30)
        before = set(w.members())
        for op in w.operations(200):
            if op.kind in ("update", "delete"):
                # Key was a member when the op was generated.
                assert isinstance(op.key, float)

    def test_note_corrections(self):
        w = UniformWorkload(seed=7)
        w.note_insert(0.5)
        assert w.size == 1
        w.note_delete(0.5)
        assert w.size == 0
        w.note_delete(0.5)  # idempotent
        assert w.size == 0

    def test_ops_respect_mix(self):
        w = UniformWorkload(mix=OpMix(insert=1, update=0, delete=0, lookup=0), seed=8)
        assert all(op.kind == "insert" for op in w.operations(50))

    def test_empty_directory_degrades_to_insert(self):
        w = UniformWorkload(mix=OpMix(insert=0, update=0, delete=1), seed=9)
        op = w.next_operation()
        assert op.kind == "insert"

    def test_deterministic_with_seed(self):
        a = [op.key for op in UniformWorkload(seed=10).operations(20)]
        b = [op.key for op in UniformWorkload(seed=10).operations(20)]
        assert a == b


class TestZipfWorkload:
    def test_zero_skew_is_uniform(self):
        w = ZipfWorkload(seed=11, skew=0.0)
        w.initial_load(10)
        assert w.existing_key() in set(w.members())

    def test_skew_concentrates_access(self):
        from collections import Counter

        w = ZipfWorkload(seed=12, skew=2.0)
        w.initial_load(50)
        counts = Counter(w.existing_key() for _ in range(2000))
        top_share = counts.most_common(1)[0][1] / 2000
        assert top_share > 0.2  # one key dominates

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            ZipfWorkload(skew=-1)


class TestLocalityWorkload:
    def test_clients_map_to_disjoint_halves(self):
        w = LocalityWorkload(seed=13)
        for op in w.operations(300):
            if op.client == "A":
                assert 0.0 <= op.key < 0.5
            else:
                assert 0.5 <= op.key < 1.0

    def test_initial_load_covers_both_halves(self):
        w = LocalityWorkload(seed=14)
        ops = w.initial_load(100)
        clients = {op.client for op in ops}
        assert clients == {"A", "B"}

    def test_type_a_fraction(self):
        w = LocalityWorkload(seed=15, type_a_fraction=0.9)
        ops = list(w.operations(1000))
        a_share = sum(op.client == "A" for op in ops) / len(ops)
        assert a_share > 0.8

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            LocalityWorkload(type_a_fraction=0.0)
        with pytest.raises(ValueError):
            LocalityWorkload(type_a_fraction=1.5)

    def test_all_type_a_allowed(self):
        w = LocalityWorkload(seed=16, type_a_fraction=1.0)
        assert all(op.client == "A" for op in w.operations(50))


class TestOperationRecord:
    def test_defaults(self):
        op = Operation("lookup", 0.5)
        assert op.value is None and op.client == "default"
