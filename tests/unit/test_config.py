"""Unit tests for suite configuration and quorum constraints."""

import pytest

from repro.core.config import SuiteConfig, _rep_name
from repro.core.errors import ConfigurationError


class TestQuorumConstraints:
    def test_valid_322(self):
        config = SuiteConfig.from_xyz("3-2-2")
        assert config.total_votes == 3
        assert config.read_quorum == 2 and config.write_quorum == 2

    def test_read_write_must_intersect(self):
        # R + W <= total violates quorum intersection.
        with pytest.raises(ConfigurationError):
            SuiteConfig.uniform(3, read_quorum=1, write_quorum=2)

    def test_write_quorums_must_mutually_intersect(self):
        # 2W <= total lets two writers miss each other.
        with pytest.raises(ConfigurationError):
            SuiteConfig.uniform(4, read_quorum=3, write_quorum=2)

    def test_zero_quorum_rejected(self):
        with pytest.raises(ConfigurationError):
            SuiteConfig(votes={"A": 1}, read_quorum=0, write_quorum=1)

    def test_oversized_quorum_rejected(self):
        with pytest.raises(ConfigurationError):
            SuiteConfig(votes={"A": 1}, read_quorum=2, write_quorum=1)

    def test_negative_votes_rejected(self):
        with pytest.raises(ConfigurationError):
            SuiteConfig(votes={"A": -1, "B": 3}, read_quorum=1, write_quorum=2)

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            SuiteConfig(votes={}, read_quorum=1, write_quorum=1)

    def test_zero_vote_hint_replica_allowed(self):
        config = SuiteConfig(
            votes={"A": 1, "B": 1, "C": 1, "HINT": 0},
            read_quorum=2,
            write_quorum=2,
        )
        assert config.total_votes == 3
        assert "HINT" in config.names
        assert "HINT" not in config.voting_names()


class TestConstructors:
    def test_from_xyz(self):
        config = SuiteConfig.from_xyz("5-3-3")
        assert config.names == ("A", "B", "C", "D", "E")
        assert all(v == 1 for v in config.votes.values())

    def test_from_xyz_bad_spec(self):
        for bad in ("3-2", "a-b-c", "3-2-2-2", ""):
            with pytest.raises(ConfigurationError):
                SuiteConfig.from_xyz(bad)

    def test_unanimous(self):
        config = SuiteConfig.unanimous(4)
        assert config.read_quorum == 1
        assert config.write_quorum == 4

    def test_weighted_votes(self):
        config = SuiteConfig(
            votes={"big": 3, "small1": 1, "small2": 1},
            read_quorum=3,
            write_quorum=3,
        )
        assert config.total_votes == 5
        # A single big replica can carry a whole quorum.
        assert config.min_reps_for(3) == 1

    def test_min_reps_for_uniform(self):
        config = SuiteConfig.from_xyz("5-3-3")
        assert config.min_reps_for(3) == 3

    def test_min_reps_for_unreachable(self):
        config = SuiteConfig.from_xyz("3-2-2")
        with pytest.raises(ConfigurationError):
            config.min_reps_for(4)


class TestSpecRendering:
    def test_uniform_spec_roundtrip(self):
        assert SuiteConfig.from_xyz("4-2-3").spec() == "4-2-3"

    def test_weighted_spec_long_form(self):
        config = SuiteConfig(
            votes={"A": 2, "B": 1}, read_quorum=2, write_quorum=2
        )
        assert "A:2" in config.spec()
        assert "R=2" in config.spec()


class TestRepNames:
    def test_first_names(self):
        assert [_rep_name(i) for i in range(4)] == ["A", "B", "C", "D"]

    def test_names_past_z(self):
        assert _rep_name(25) == "Z"
        assert _rep_name(26) == "AA"
        assert _rep_name(27) == "AB"

    def test_large_suite_names_unique(self):
        names = [_rep_name(i) for i in range(100)]
        assert len(set(names)) == 100
