"""Unit tests for the Figure 7 range-lock table.

The first class pins the published compatibility matrix cell by cell; the
rest cover the table mechanics: FIFO fairness, re-entrancy, promotion on
release, and the waits-for edges the deadlock detector consumes.
"""

from repro.core.keys import KeyRange
from repro.txn.locks import (
    AcquireStatus,
    LockMode,
    LockTable,
    conflicts,
)

LOOKUP = LockMode.REP_LOOKUP
MODIFY = LockMode.REP_MODIFY

# Two disjoint ranges and one that intersects the first.
R1 = KeyRange.of(1, 5)
R1_OVERLAP = KeyRange.of(4, 9)
R2 = KeyRange.of(10, 20)


class TestFigure7Matrix:
    """Each cell of the published compatibility relation."""

    def test_modify_vs_modify_intersecting_conflicts(self):
        assert conflicts(MODIFY, R1, MODIFY, R1_OVERLAP)

    def test_modify_vs_modify_disjoint_compatible(self):
        assert not conflicts(MODIFY, R1, MODIFY, R2)

    def test_modify_vs_lookup_intersecting_conflicts(self):
        assert conflicts(MODIFY, R1, LOOKUP, R1_OVERLAP)
        assert conflicts(LOOKUP, R1, MODIFY, R1_OVERLAP)

    def test_modify_vs_lookup_disjoint_compatible(self):
        assert not conflicts(MODIFY, R1, LOOKUP, R2)
        assert not conflicts(LOOKUP, R1, MODIFY, R2)

    def test_lookup_vs_lookup_always_compatible(self):
        assert not conflicts(LOOKUP, R1, LOOKUP, R1_OVERLAP)
        assert not conflicts(LOOKUP, R1, LOOKUP, R1)
        assert not conflicts(LOOKUP, R1, LOOKUP, R2)

    def test_conflict_is_symmetric(self):
        for ma in (LOOKUP, MODIFY):
            for mb in (LOOKUP, MODIFY):
                for ra, rb in ((R1, R1_OVERLAP), (R1, R2)):
                    assert conflicts(ma, ra, mb, rb) == conflicts(mb, rb, ma, ra)

    def test_touching_endpoint_counts_as_intersecting(self):
        assert conflicts(MODIFY, KeyRange.of(1, 5), MODIFY, KeyRange.of(5, 9))


class TestGrants:
    def test_first_acquire_granted(self):
        table = LockTable()
        assert table.acquire(1, MODIFY, R1).granted

    def test_compatible_locks_coexist(self):
        table = LockTable()
        assert table.acquire(1, LOOKUP, R1).granted
        assert table.acquire(2, LOOKUP, R1).granted
        assert table.acquire(3, MODIFY, R2).granted

    def test_conflicting_lock_waits(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        result = table.acquire(2, MODIFY, R1_OVERLAP)
        assert result.status is AcquireStatus.WAITING
        assert result.blockers == (1,)

    def test_nowait_mode_does_not_queue(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        result = table.acquire(2, MODIFY, R1, wait=False)
        assert not result.granted
        assert table.waiting_requests() == []

    def test_reader_blocks_writer(self):
        table = LockTable()
        table.acquire(1, LOOKUP, R1)
        assert not table.acquire(2, MODIFY, R1).granted

    def test_writer_blocks_reader(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        assert not table.acquire(2, LOOKUP, R1).granted


class TestReentrancy:
    def test_same_txn_relocks_freely(self):
        table = LockTable()
        assert table.acquire(1, MODIFY, R1).granted
        assert table.acquire(1, MODIFY, R1).granted
        assert table.acquire(1, LOOKUP, R1_OVERLAP).granted

    def test_upgrade_lookup_to_modify(self):
        table = LockTable()
        table.acquire(1, LOOKUP, R1)
        assert table.acquire(1, MODIFY, R1).granted

    def test_upgrade_blocked_by_other_reader(self):
        table = LockTable()
        table.acquire(1, LOOKUP, R1)
        table.acquire(2, LOOKUP, R1)
        result = table.acquire(1, MODIFY, R1)
        assert not result.granted
        assert result.blockers == (2,)


class TestFifoFairness:
    def test_later_reader_cannot_jump_queued_writer(self):
        table = LockTable()
        table.acquire(1, LOOKUP, R1)          # holder
        table.acquire(2, MODIFY, R1)           # queued writer
        result = table.acquire(3, LOOKUP, R1)  # must not starve the writer
        assert not result.granted
        assert 2 in result.blockers

    def test_disjoint_request_bypasses_queue(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, MODIFY, R1)  # queued
        assert table.acquire(3, MODIFY, R2).granted


class TestRelease:
    def test_release_promotes_fifo(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, MODIFY, R1)
        table.acquire(3, MODIFY, R1)
        granted = table.release_all(1)
        assert [g.txn_id for g in granted] == [2]
        assert table.holders() == {2}
        granted = table.release_all(2)
        assert [g.txn_id for g in granted] == [3]

    def test_release_grants_all_compatible_waiters(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, LOOKUP, R1)
        table.acquire(3, LOOKUP, R1)
        granted = table.release_all(1)
        assert {g.txn_id for g in granted} == {2, 3}

    def test_release_drops_queued_requests_too(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, MODIFY, R1)
        table.release_all(2)  # waiter gives up
        assert table.waiting_requests() == []
        assert table.holders() == {1}

    def test_idle_after_all_released(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.release_all(1)
        assert table.is_idle()


class TestIntrospection:
    def test_held_by(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(1, LOOKUP, R2)
        table.acquire(2, LOOKUP, R2)
        assert len(table.held_by(1)) == 2
        assert len(table.held_by(2)) == 1
        assert len(table.all_held()) == 3

    def test_waits_for_edges(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, MODIFY, R1)
        table.acquire(3, MODIFY, R1)
        edges = set(table.waits_for_edges())
        assert (2, 1) in edges
        # 3 waits for both the holder and the earlier queued request.
        assert (3, 1) in edges and (3, 2) in edges

    def test_stats_counters(self):
        table = LockTable()
        table.acquire(1, MODIFY, R1)
        table.acquire(2, MODIFY, R1)
        assert table.stats.acquisitions == 2
        assert table.stats.immediate_grants == 1
        assert table.stats.waits == 1
        table.stats.reset()
        assert table.stats.acquisitions == 0
