"""Unit tests for the retrying front-end (`ResilientSuite`, `RetryPolicy`)."""

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    RpcTimeoutError,
)
from repro.core.resilient import ResilientSuite, RetryPolicy


class TestRetryPolicy:
    def test_defaults_valid(self):
        RetryPolicy()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff=10.0, multiplier=2.0, max_backoff=35.0, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(i, rng) for i in range(4)]
        assert delays == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_backoff=10.0, jitter=0.5)
        rng = random.Random(1)
        for _ in range(200):
            delay = policy.backoff(0, rng)
            assert 10.0 <= delay <= 15.0


def flaky(real_fn, failures, exc=None):
    """Wrap ``real_fn`` to raise ``failures`` times before succeeding."""
    exc = exc or RpcTimeoutError("node-A", "dir:A.rep_insert")
    state = {"left": failures, "calls": 0}

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise exc
        return real_fn(*args, **kwargs)

    return wrapper, state


def make(**policy_kw):
    policy_kw.setdefault("max_attempts", 3)
    policy_kw.setdefault("base_backoff", 5.0)
    policy_kw.setdefault("jitter", 0.0)
    cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=7))
    front = ResilientSuite(
        cluster.suite,
        policy=RetryPolicy(**policy_kw),
        rng=random.Random(0),
    )
    return cluster, front


class TestResilientSuite:
    def test_success_without_faults_is_transparent(self):
        cluster, front = make()
        front.insert("k", 1)
        assert front.lookup("k") == (True, 1)
        snap = cluster.metrics.snapshot()
        assert snap.get("suite.retry.attempts", 0) == 0
        assert snap.get("suite.retry.masked", 0) == 0

    def test_transient_failure_is_masked(self):
        cluster, front = make()
        wrapper, state = flaky(cluster.suite.insert, failures=1)
        cluster.suite.insert = wrapper
        front.insert("k", 1)
        assert state["calls"] == 2
        assert front.lookup("k") == (True, 1)
        snap = cluster.metrics.snapshot()
        assert snap["suite.retry.attempts"] == 1
        assert snap["suite.retry.masked"] == 1

    def test_exhaustion_reraises(self):
        cluster, front = make(max_attempts=3)
        wrapper, state = flaky(cluster.suite.delete, failures=99)
        cluster.suite.delete = wrapper
        with pytest.raises(RpcTimeoutError):
            front.delete("missing")
        assert state["calls"] == 3
        snap = cluster.metrics.snapshot()
        assert snap["suite.retry.exhausted"] == 1
        assert snap["suite.retry.attempts"] == 2  # retries, not first tries

    def test_backoff_advances_simulated_clock(self):
        cluster, front = make(
            max_attempts=3, base_backoff=5.0, multiplier=2.0, jitter=0.0
        )
        wrapper, _ = flaky(cluster.suite.update, failures=99)
        cluster.suite.update = wrapper
        before = cluster.network.clock.now()
        with pytest.raises(RpcTimeoutError):
            front.update("k", 2)
        # two sleeps: 5 then 10 ticks
        assert cluster.network.clock.now() == before + 15.0

    def test_application_errors_propagate_immediately(self):
        cluster, front = make()
        front.insert("k", 1)
        with pytest.raises(KeyAlreadyPresentError):
            front.insert("k", 2)
        with pytest.raises(KeyNotPresentError):
            front.update("nope", 0)
        assert cluster.metrics.snapshot().get("suite.retry.attempts", 0) == 0

    def test_ambiguous_committed_write_resolves_exactly_once(self):
        # The attempt commits but the caller sees a timeout (lost final
        # reply).  The retry layer must consult the decision log and
        # report success instead of re-executing — a naive retry would
        # raise KeyAlreadyPresentError here.
        cluster, front = make()
        real_insert = cluster.suite.insert

        def commit_then_timeout(key, value):
            real_insert(key, value)
            raise RpcTimeoutError("client", "commit", lost="reply")

        cluster.suite.insert = commit_then_timeout
        front.insert("k", 1)  # no error surfaces
        cluster.suite.insert = real_insert
        assert front.lookup("k") == (True, 1)
        snap = cluster.metrics.snapshot()
        assert snap["suite.retry.exactly_once"] == 1
        assert snap.get("suite.retry.attempts", 0) == 0  # resolved, not retried

    def test_lookup_never_probes_the_decision_log(self):
        # A committed prior write leaves last_txn_id pointing at a
        # committed transaction; a failed lookup must still re-run (it
        # needs the value), not short-circuit to "success".
        cluster, front = make()
        front.insert("k", 41)
        wrapper, state = flaky(cluster.suite.lookup, failures=1)
        cluster.suite.lookup = wrapper
        assert front.lookup("k") == (True, 41)
        assert state["calls"] == 2
        snap = cluster.metrics.snapshot()
        assert snap["suite.retry.masked"] == 1
        assert snap.get("suite.retry.exactly_once", 0) == 0

    def test_resolve_pending_runs_between_attempts(self):
        cluster, front = make()
        calls = []
        real_resolve = cluster.suite.txn_manager.resolve_pending
        cluster.suite.txn_manager.resolve_pending = lambda: (
            calls.append(True),
            real_resolve(),
        )[1]
        wrapper, _ = flaky(cluster.suite.insert, failures=1)
        cluster.suite.insert = wrapper
        front.insert("k", 1)
        assert calls == [True]

    def test_attribute_delegation(self):
        cluster, front = make()
        front.insert("k", 1)
        assert front.authoritative_state() == {"k": 1}
        assert front.config is cluster.suite.config
        assert "ResilientSuite" in repr(front)
