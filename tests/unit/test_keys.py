"""Unit tests for the bounded key model and range algebra."""

import pytest

from repro.core.keys import HIGH, LOW, BoundedKey, KeyRange, hull, unwrap, wrap, wrap_all


class TestSentinelOrdering:
    def test_low_below_everything(self):
        assert LOW < wrap("a")
        assert LOW < wrap(-(10**100))
        assert LOW < HIGH

    def test_high_above_everything(self):
        assert wrap("zzzz") < HIGH
        assert wrap(10**100) < HIGH
        assert not HIGH < HIGH

    def test_sentinels_equal_themselves(self):
        assert LOW == BoundedKey.of(LOW)
        assert LOW <= LOW and LOW >= LOW
        assert HIGH <= HIGH and HIGH >= HIGH
        assert not LOW < LOW

    def test_sentinel_predicates(self):
        assert LOW.is_low and not LOW.is_high
        assert HIGH.is_high and not HIGH.is_low
        assert LOW.is_sentinel and HIGH.is_sentinel
        assert not wrap("x").is_sentinel

    def test_repr(self):
        assert repr(LOW) == "LOW"
        assert repr(HIGH) == "HIGH"
        assert repr(wrap("a")) == "Key('a')"


class TestNormalKeys:
    def test_payload_order(self):
        assert wrap("a") < wrap("b")
        assert wrap(1) < wrap(2)
        assert not wrap("b") < wrap("a")

    def test_total_order_operators(self):
        a, b = wrap(1), wrap(2)
        assert a <= b and a < b and b > a and b >= a
        assert a <= wrap(1) and a >= wrap(1)

    def test_equality_and_hash(self):
        assert wrap("k") == wrap("k")
        assert hash(wrap("k")) == hash(wrap("k"))
        assert wrap("k") != wrap("j")
        assert wrap("k") != LOW

    def test_wrap_idempotent(self):
        k = wrap("x")
        assert wrap(k) is k

    def test_unwrap(self):
        assert unwrap(wrap("payload")) == "payload"

    def test_unwrap_sentinel_rejected(self):
        with pytest.raises(ValueError):
            unwrap(LOW)
        with pytest.raises(ValueError):
            unwrap(HIGH)

    def test_wrap_all_preserves_order(self):
        keys = wrap_all(["a", "b", "c"])
        assert [k.payload for k in keys] == ["a", "b", "c"]

    def test_incomparable_payloads_raise(self):
        with pytest.raises(TypeError):
            wrap("a") < wrap(1)

    def test_min_max_work(self):
        ks = [wrap(3), LOW, wrap(7), HIGH]
        assert min(ks) is LOW
        assert max(ks) is HIGH


class TestKeyRange:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(wrap(5), wrap(3))

    def test_point_range(self):
        r = KeyRange.point(wrap(4))
        assert r.is_point()
        assert r.contains(wrap(4))
        assert not r.contains(wrap(5))
        assert not r.contains_strictly(wrap(4))

    def test_of_wraps_payloads(self):
        r = KeyRange.of(1, 9)
        assert r.contains(wrap(5))

    def test_full_covers_sentinels(self):
        r = KeyRange.full()
        assert r.contains(LOW) and r.contains(HIGH) and r.contains(wrap("q"))

    def test_contains_boundaries(self):
        r = KeyRange.of("b", "d")
        assert r.contains(wrap("b")) and r.contains(wrap("d"))
        assert not r.contains_strictly(wrap("b"))
        assert r.contains_strictly(wrap("c"))
        assert not r.contains(wrap("a")) and not r.contains(wrap("e"))

    def test_intersects_overlapping(self):
        assert KeyRange.of(1, 5).intersects(KeyRange.of(3, 9))
        assert KeyRange.of(3, 9).intersects(KeyRange.of(1, 5))

    def test_intersects_touching_endpoints(self):
        # Closed intervals: sharing one key counts as intersecting,
        # which is what the lock matrix needs.
        assert KeyRange.of(1, 5).intersects(KeyRange.of(5, 9))

    def test_disjoint_ranges(self):
        assert not KeyRange.of(1, 2).intersects(KeyRange.of(3, 4))

    def test_nested_ranges_intersect(self):
        assert KeyRange.of(1, 10).intersects(KeyRange.of(4, 5))

    def test_covers(self):
        assert KeyRange.of(1, 10).covers(KeyRange.of(4, 5))
        assert not KeyRange.of(4, 5).covers(KeyRange.of(1, 10))
        assert KeyRange.of(1, 10).covers(KeyRange.of(1, 10))

    def test_union_hull(self):
        h = KeyRange.of(1, 3).union_hull(KeyRange.of(7, 9))
        assert h.contains(wrap(5))
        assert h.low == wrap(1) and h.high == wrap(9)

    def test_hull_function(self):
        h = hull([KeyRange.of(2, 3), KeyRange.of(0, 1), KeyRange.of(8, 9)])
        assert h.low == wrap(0) and h.high == wrap(9)

    def test_hull_empty_rejected(self):
        with pytest.raises(ValueError):
            hull([])

    def test_range_with_sentinels(self):
        r = KeyRange(LOW, wrap("m"))
        assert r.contains(wrap("a"))
        assert not r.contains(wrap("z"))
        assert r.contains(LOW)
