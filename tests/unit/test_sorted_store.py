"""Unit tests for representative stores (run against both implementations).

The ``store`` fixture parameterizes every test over SortedStore and
BTreeStore, so the semantics below are pinned for both.
"""

import pytest

from repro.core.errors import (
    CoalesceBoundsError,
    SentinelKeyError,
    StoreCorruptionError,
)
from repro.core.keys import HIGH, LOW, wrap
from repro.storage.interface import Segment
from tests.conftest import fill_store


class TestFreshStore:
    def test_starts_with_sentinels_only(self, store):
        assert store.entry_count() == 0
        entries = list(store.iter_entries())
        assert entries[0].key.is_low and entries[-1].key.is_high
        assert len(entries) == 2

    def test_single_initial_gap(self, store):
        assert list(store.iter_gap_versions()) == [0]

    def test_lookup_missing_returns_gap_version(self, store):
        reply = store.lookup(wrap("anything"))
        assert not reply.present
        assert reply.version == 0
        assert reply.value is None

    def test_sentinels_present(self, store):
        assert store.contains(LOW) and store.contains(HIGH)
        assert store.lookup(LOW).present
        assert store.lookup(HIGH).present

    def test_invariants_hold(self, store):
        store.check_invariants()


class TestInsert:
    def test_new_entry_visible(self, store):
        result = store.insert(wrap("b"), 1, "B")
        assert result.was_new
        assert result.split_gap_version == 0
        reply = store.lookup(wrap("b"))
        assert reply.present and reply.version == 1 and reply.value == "B"

    def test_split_preserves_gap_version(self, store):
        store.insert(wrap("a"), 1, "A")
        store.insert(wrap("c"), 1, "C")
        store.coalesce(wrap("a"), wrap("c"), 5)  # gap (a,c) now version 5
        store.insert(wrap("b"), 6, "B")
        # Both halves of the split gap keep version 5.
        assert store.lookup(wrap("aa")).version == 5
        assert store.lookup(wrap("bb")).version == 5

    def test_overwrite_returns_replaced(self, store):
        store.insert(wrap("k"), 1, "old")
        result = store.insert(wrap("k"), 2, "new")
        assert not result.was_new
        assert result.replaced.version == 1 and result.replaced.value == "old"
        assert store.lookup(wrap("k")).value == "new"

    def test_sentinels_rejected(self, store):
        with pytest.raises(SentinelKeyError):
            store.insert(LOW, 1, "x")
        with pytest.raises(SentinelKeyError):
            store.insert(HIGH, 1, "x")

    def test_entry_count_tracks_user_entries(self, store):
        fill_store(store, ["a", "b", "c"])
        assert store.entry_count() == 3
        store.insert(wrap("b"), 9, "again")  # overwrite: no growth
        assert store.entry_count() == 3

    def test_many_inserts_sorted(self, store):
        fill_store(store, [5, 1, 9, 3, 7])
        keys = [e.key.payload for e in store.user_entries()]
        assert keys == [1, 3, 5, 7, 9]
        store.check_invariants()


class TestNeighborQueries:
    def test_predecessor_of_present_key(self, store):
        fill_store(store, ["a", "c"])
        reply = store.predecessor(wrap("c"))
        assert reply.key == wrap("a")

    def test_predecessor_of_absent_key(self, store):
        fill_store(store, ["a", "c"])
        reply = store.predecessor(wrap("b"))
        assert reply.key == wrap("a")

    def test_predecessor_falls_to_low(self, store):
        fill_store(store, ["m"])
        assert store.predecessor(wrap("a")).key.is_low

    def test_predecessor_of_low_rejected(self, store):
        with pytest.raises(ValueError):
            store.predecessor(LOW)

    def test_successor_of_present_key(self, store):
        fill_store(store, ["a", "c"])
        assert store.successor(wrap("a")).key == wrap("c")

    def test_successor_of_absent_key(self, store):
        fill_store(store, ["a", "c"])
        assert store.successor(wrap("b")).key == wrap("c")

    def test_successor_rises_to_high(self, store):
        fill_store(store, ["m"])
        assert store.successor(wrap("z")).key.is_high

    def test_successor_of_high_rejected(self, store):
        with pytest.raises(ValueError):
            store.successor(HIGH)

    def test_gap_version_reported(self, store):
        fill_store(store, ["a", "c"])
        store.coalesce(wrap("a"), wrap("c"), 7)
        assert store.predecessor(wrap("b")).gap_version == 7
        assert store.successor(wrap("b")).gap_version == 7
        assert store.predecessor(wrap("c")).gap_version == 7
        assert store.successor(wrap("a")).gap_version == 7

    def test_neighbor_entry_versions(self, store):
        store.insert(wrap("a"), 42, "A")
        store.insert(wrap("c"), 43, "C")
        assert store.predecessor(wrap("b")).entry_version == 42
        assert store.successor(wrap("b")).entry_version == 43


class TestCoalesce:
    def test_removes_interior_entries(self, store):
        fill_store(store, ["a", "b", "c", "d"])
        result = store.coalesce(wrap("a"), wrap("d"), 9)
        assert [e.key.payload for e in result.removed.entries] == ["b", "c"]
        assert store.entry_count() == 2
        assert not store.contains(wrap("b"))

    def test_new_gap_version_everywhere_inside(self, store):
        fill_store(store, ["a", "d"])
        store.coalesce(wrap("a"), wrap("d"), 9)
        for probe in ("aa", "b", "c", "cz"):
            assert store.lookup(wrap(probe)).version == 9

    def test_bounds_survive(self, store):
        fill_store(store, ["a", "b", "c"])
        store.coalesce(wrap("a"), wrap("c"), 5)
        assert store.contains(wrap("a")) and store.contains(wrap("c"))

    def test_missing_bound_rejected(self, store):
        fill_store(store, ["a", "c"])
        with pytest.raises(CoalesceBoundsError):
            store.coalesce(wrap("a"), wrap("x"), 5)
        with pytest.raises(CoalesceBoundsError):
            store.coalesce(wrap("x"), wrap("c"), 5)

    def test_inverted_bounds_rejected(self, store):
        fill_store(store, ["a", "c"])
        with pytest.raises(CoalesceBoundsError):
            store.coalesce(wrap("c"), wrap("a"), 5)
        with pytest.raises(CoalesceBoundsError):
            store.coalesce(wrap("a"), wrap("a"), 5)

    def test_sentinel_bounds_allowed(self, store):
        fill_store(store, ["a", "b"])
        result = store.coalesce(LOW, HIGH, 3)
        assert len(result.removed.entries) == 2
        assert store.entry_count() == 0
        assert store.lookup(wrap("zz")).version == 3

    def test_empty_range_coalesce(self, store):
        fill_store(store, ["a", "b"])
        result = store.coalesce(wrap("a"), wrap("b"), 4)
        assert result.removed.entries == ()
        assert store.lookup(wrap("ab")).version == 4

    def test_old_gap_versions_recorded_for_undo(self, store):
        fill_store(store, ["a", "b", "c"])
        result = store.coalesce(wrap("a"), wrap("c"), 9)
        # One removed entry -> two old gap versions (both 0 initially).
        assert len(result.removed.gap_versions) == 2


class TestRawMutators:
    def test_remove_entry_merges_gaps(self, store):
        fill_store(store, ["a", "b", "c"])
        removed = store.remove_entry(wrap("b"), merged_gap_version=8)
        assert removed.key == wrap("b")
        assert store.lookup(wrap("b")).version == 8
        store.check_invariants()

    def test_remove_missing_entry_rejected(self, store):
        with pytest.raises(KeyError):
            store.remove_entry(wrap("nope"), 1)

    def test_remove_sentinel_rejected(self, store):
        with pytest.raises(SentinelKeyError):
            store.remove_entry(LOW, 1)

    def test_restore_segment_roundtrip(self, store):
        fill_store(store, ["a", "b", "c", "d"])
        before = store.snapshot()
        result = store.coalesce(wrap("a"), wrap("d"), 9)
        store.restore_segment(wrap("a"), wrap("d"), result.removed)
        assert store.snapshot() == before
        store.check_invariants()

    def test_restore_rejects_out_of_range_entries(self, store):
        from repro.core.entries import Entry

        fill_store(store, ["a", "d"])
        bad = Segment(entries=(Entry(wrap("z"), 1, "?"),), gap_versions=(0, 0))
        with pytest.raises(StoreCorruptionError):
            store.restore_segment(wrap("a"), wrap("d"), bad)


class TestSnapshotRestore:
    def test_roundtrip(self, store):
        fill_store(store, ["a", "b", "c"])
        store.coalesce(wrap("a"), wrap("c"), 5)
        snap = store.snapshot()
        store.insert(wrap("z"), 9, "Z")
        store.restore(snap)
        assert store.snapshot() == snap
        store.check_invariants()

    def test_logically_equal(self, store):
        from repro.storage.sorted_store import SortedStore

        fill_store(store, ["a", "b"])
        other = fill_store(SortedStore(), ["a", "b"])
        assert store.logically_equal(other)
        other.insert(wrap("c"), 9, "C")
        assert not store.logically_equal(other)

    def test_entries_between(self, store):
        fill_store(store, [1, 2, 3, 4, 5])
        between = store.entries_between(wrap(1), wrap(4))
        assert [e.key.payload for e in between] == [2, 3]
        assert store.entries_between(LOW, HIGH) == store.user_entries()
        assert store.entries_between(wrap(2), wrap(3)) == ()


class TestStoreStats:
    def test_counters(self, store):
        store.insert(wrap("a"), 1, "A")
        store.insert(wrap("a"), 2, "A2")
        store.lookup(wrap("a"))
        store.predecessor(wrap("a"))
        assert store.stats.inserts == 1
        assert store.stats.overwrites == 1
        assert store.stats.lookups == 1
        assert store.stats.neighbor_queries == 1
        store.stats.reset()
        assert store.stats.inserts == 0
