"""Unit tests for table rendering."""

from repro.core.stats import DeleteOverheadStats
from repro.sim.report import (
    comparison_table,
    figure14_table,
    figure15_table,
    format_table,
)


class _FakeResult:
    """Anything exposing stats_table() works for the renderers."""

    def __init__(self, avg=1.0):
        stats = DeleteOverheadStats()
        stats.record_delete([int(avg), int(avg)], 1, 1)
        self._stats = stats

    def stats_table(self):
        return self._stats.as_table()


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        # Columns align: separator position consistent.
        assert lines[0].index("|") == lines[2].index("|")

    def test_title_included(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"


class TestFigureTables:
    def test_figure14_has_row_per_config(self):
        text = figure14_table({"3-2-2": _FakeResult(), "4-2-3": _FakeResult()})
        assert "3-2-2" in text and "4-2-3" in text
        assert "Entries in ranges coalesced" in text

    def test_figure15_has_measures_and_sizes(self):
        text = figure15_table({100: _FakeResult(), 1000: _FakeResult()})
        assert "100 entries" in text and "1000 entries" in text
        for measure in ("Avg", "Max", "Std Dev"):
            assert measure in text

    def test_comparison_table(self):
        text = comparison_table(
            {"ours": {"msgs": 4.0}, "baseline": {"msgs": 9.0}},
            columns=["msgs"],
            title="Messages per op",
        )
        assert "ours" in text and "9.000" in text
