"""Unit tests for the simulated network substrate: clock, nodes, network, RPC."""

import pytest

from repro.core.errors import NodeDownError, OriginDownError, RpcTimeoutError
from repro.net.clock import SimClock
from repro.net.failures import (
    FailureEvent,
    LossEvent,
    LossyLinks,
    ScriptedFailures,
    ScriptedLoss,
)
from repro.net.network import Network, site_latency, uniform_latency
from repro.net.node import Node
from repro.net.rpc import RpcEndpoint


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to(self):
        clock = SimClock(10)
        clock.advance_to(5)  # no-op: time never goes backward
        assert clock.now() == 10
        clock.advance_to(20)
        assert clock.now() == 20


class _Volatile:
    """Crash-aware test service."""

    def __init__(self):
        self.state = "warm"
        self.recovered = 0

    def on_crash(self):
        self.state = None

    def on_recover(self):
        self.state = "rebuilt"
        self.recovered += 1

    def ping(self):
        return "pong"


class TestNode:
    def test_host_and_fetch_service(self):
        node = Node("n1")
        svc = _Volatile()
        node.host("svc", svc)
        assert node.service("svc") is svc

    def test_duplicate_service_rejected(self):
        node = Node("n1")
        node.host("svc", _Volatile())
        with pytest.raises(ValueError):
            node.host("svc", _Volatile())

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            Node("n1").service("nope")

    def test_crash_blocks_access_and_wipes_state(self):
        node = Node("n1")
        svc = _Volatile()
        node.host("svc", svc)
        node.crash()
        assert not node.is_up
        assert svc.state is None
        with pytest.raises(NodeDownError):
            node.service("svc")

    def test_recover_rebuilds(self):
        node = Node("n1")
        svc = _Volatile()
        node.host("svc", svc)
        node.crash()
        node.recover()
        assert node.is_up
        assert svc.state == "rebuilt"
        assert svc.recovered == 1

    def test_crash_idempotent(self):
        node = Node("n1")
        node.host("svc", _Volatile())
        node.crash()
        node.crash()
        assert node.crashes == 1

    def test_recover_idempotent(self):
        node = Node("n1")
        node.recover()  # already up
        assert node.recoveries == 0

    def test_stateless_service_tolerated(self):
        node = Node("n1")
        node.host("plain", object())
        node.crash()
        node.recover()  # no protocol required


class TestLatencyModels:
    def test_uniform(self):
        model = uniform_latency(3.0)
        assert model("a", "b") == 3.0
        assert model("a", "a") == 0.0

    def test_site_latency(self):
        model = site_latency({"n1": "east", "n2": "east", "n3": "west"}, 1.0, 50.0)
        assert model("n1", "n2") == 1.0
        assert model("n1", "n3") == 50.0
        assert model("n1", "n1") == 0.0


class TestNetwork:
    def test_add_and_get_nodes(self):
        net = Network()
        net.add_nodes(["a", "b"])
        assert {n.node_id for n in net.nodes()} == {"a", "b"}
        assert net.node("a").node_id == "a"

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_node("a")

    def test_fully_connected_by_default(self):
        net = Network()
        net.add_nodes(["a", "b"])
        assert net.reachable("a", "b")

    def test_partition_blocks_cross_group(self):
        net = Network()
        net.add_nodes(["a", "b", "c"])
        net.partition(["a"], ["b", "c"])
        assert not net.reachable("a", "b")
        assert net.reachable("b", "c")
        assert net.reachable("a", "a")

    def test_unnamed_nodes_form_last_group(self):
        net = Network()
        net.add_nodes(["a", "b", "c"])
        net.partition(["a"])
        assert net.reachable("b", "c")
        assert not net.reachable("a", "c")

    def test_heal(self):
        net = Network()
        net.add_nodes(["a", "b"])
        net.partition(["a"], ["b"])
        net.heal()
        assert net.reachable("a", "b")

    def test_partition_external_endpoints_allowed(self):
        # RPC origins like "client" are not nodes but can be partitioned.
        net = Network()
        net.add_nodes(["a", "b"])
        net.partition(["client", "a"], ["b"])
        assert net.reachable("client", "a")
        assert not net.reachable("client", "b")

    def test_unnamed_external_joins_implicit_group(self):
        net = Network()
        net.add_nodes(["a", "b"])
        net.partition(["a"])  # b + any external form the implicit group
        assert net.reachable("client", "b")
        assert not net.reachable("client", "a")

    def test_check_path_down_node(self):
        net = Network()
        net.add_nodes(["a", "b"])
        net.node("b").crash()
        with pytest.raises(NodeDownError):
            net.check_path("a", "b")

    def test_transmit_advances_clock_and_counts(self):
        net = Network(latency=uniform_latency(2.0))
        net.add_nodes(["a", "b"])
        net.transmit_round("a", "b", "svc.method")
        assert net.clock.now() == 4.0  # request + reply
        assert net.stats.messages == 2
        assert net.stats.rpc_rounds == 1
        assert net.stats.by_method == {"svc.method": 1}


class _Echo:
    def echo(self, x):
        return x

    def boom(self):
        raise RuntimeError("application error")


class TestRpc:
    def _net(self):
        net = Network()
        node = net.add_node("server")
        node.host("svc", _Echo())
        return net

    def test_call_roundtrip(self):
        net = self._net()
        rpc = RpcEndpoint(net, origin="client")
        assert rpc.call("server", "svc", "echo", 42) == 42
        assert net.stats.rpc_rounds == 1

    def test_call_down_node(self):
        net = self._net()
        net.node("server").crash()
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(NodeDownError):
            rpc.call("server", "svc", "echo", 1)

    def test_call_partitioned_node(self):
        net = self._net()
        client = net.add_node("client")
        net.partition(["client"], ["server"])
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(NodeDownError):
            rpc.call("server", "svc", "echo", 1)

    def test_application_errors_propagate(self):
        net = self._net()
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(RuntimeError):
            rpc.call("server", "svc", "boom")

    def test_try_call_absorbs_network_failure(self):
        net = self._net()
        net.node("server").crash()
        rpc = RpcEndpoint(net, origin="client")
        assert rpc.try_call("server", "svc", "echo", 1, default="dflt") == "dflt"

    def test_try_call_passes_application_errors(self):
        net = self._net()
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(RuntimeError):
            rpc.try_call("server", "svc", "boom")

    def test_payload_items_accounted(self):
        net = self._net()
        rpc = RpcEndpoint(net, origin="client")
        rpc.call("server", "svc", "echo", 1, payload_items=3)
        assert net.stats.payload_items == 3

    def test_traffic_reset(self):
        net = self._net()
        rpc = RpcEndpoint(net, origin="client")
        rpc.call("server", "svc", "echo", 1)
        net.stats.reset()
        assert net.stats.messages == 0
        assert net.stats.by_method == {}

    def test_try_call_absorbs_origin_down(self):
        net = self._net()
        client = net.add_node("client")
        rpc = RpcEndpoint(net, origin="client")
        client.crash()
        with pytest.raises(OriginDownError):
            rpc.call("server", "svc", "echo", 1)
        assert rpc.try_call("server", "svc", "echo", 1, default="dflt") == "dflt"

    def test_try_call_absorbs_timeout(self):
        net = self._net()
        net.install_faults(LossyLinks(request_loss=1.0))
        rpc = RpcEndpoint(net, origin="client")
        assert rpc.try_call("server", "svc", "echo", 1, default="dflt") == "dflt"


class _Tally:
    """Service that counts how many times it was invoked."""

    def __init__(self):
        self.calls = 0

    def put(self, x):
        self.calls += 1
        return ("stored", x)


class TestLossyRpc:
    def _net(self, faults):
        net = Network()
        tally = _Tally()
        net.add_node("server").host("svc", tally)
        net.install_faults(faults)
        return net, tally

    def test_lost_request_has_no_effect(self):
        net, tally = self._net(
            ScriptedLoss([LossEvent("request", method="svc.put")])
        )
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(RpcTimeoutError) as exc:
            rpc.call("server", "svc", "put", 1)
        assert exc.value.lost == "request"
        assert exc.value.node_id == "server"
        assert tally.calls == 0  # the request never arrived

    def test_lost_reply_applies_the_effect(self):
        net, tally = self._net(
            ScriptedLoss([LossEvent("reply", method="svc.put")])
        )
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(RpcTimeoutError) as exc:
            rpc.call("server", "svc", "put", 1)
        assert exc.value.lost == "reply"
        assert tally.calls == 1  # executed; only the answer was dropped

    def test_timeout_advances_clock_and_accounts_traffic(self):
        net, _ = self._net(
            ScriptedLoss(
                [LossEvent("request", nth=0), LossEvent("reply", nth=0)]
            )
        )
        rpc = RpcEndpoint(net, origin="client")
        with pytest.raises(RpcTimeoutError):
            rpc.call("server", "svc", "put", 1)  # request lost: 1 message
        with pytest.raises(RpcTimeoutError):
            rpc.call("server", "svc", "put", 2)  # reply lost: 2 messages
        assert net.clock.now() == 2 * net.rpc_timeout
        assert net.stats.dropped == 2
        assert net.stats.messages == 3
        assert net.stats.rpc_rounds == 0  # rounds are completed exchanges

    def test_surviving_call_unaffected(self):
        net, tally = self._net(ScriptedLoss([]))
        rpc = RpcEndpoint(net, origin="client")
        assert rpc.call("server", "svc", "put", 3) == ("stored", 3)
        assert net.stats.rpc_rounds == 1
        assert net.stats.dropped == 0

    def test_flaky_latency_added_to_surviving_rounds(self):
        net, _ = self._net(LossyLinks(flaky_prob=1.0, flaky_extra=5.0))
        rpc = RpcEndpoint(net, origin="client")
        rpc.call("server", "svc", "put", 1)
        # one round trip (2 * 1.0 default latency) plus the flaky extra
        assert net.clock.now() == 2.0 + 5.0

    def test_loss_counters_published(self):
        net, _ = self._net(
            ScriptedLoss(
                [LossEvent("request", nth=0), LossEvent("reply", nth=0)]
            )
        )
        rpc = RpcEndpoint(net, origin="client")
        for x in (1, 2):
            with pytest.raises(RpcTimeoutError):
                rpc.call("server", "svc", "put", x)
        snap = net.metrics.snapshot()
        assert snap["net.loss.requests_dropped"] == 1
        assert snap["net.loss.replies_dropped"] == 1


class TestScriptedPartitionThroughRpc:
    def test_partition_then_heal_drives_rpc_outcomes(self):
        net = Network()
        net.add_node("server").host("svc", _Echo())
        injector = ScriptedFailures(
            net,
            [
                FailureEvent(1, "partition", groups=(("client",), ("server",))),
                FailureEvent(2, "heal"),
            ],
        )
        rpc = RpcEndpoint(net, origin="client")

        injector.step()  # step 0: nothing due
        assert rpc.call("server", "svc", "echo", "before") == "before"
        injector.step()  # partition fires
        with pytest.raises(NodeDownError):
            rpc.call("server", "svc", "echo", "cut")
        injector.step()  # heal fires
        assert rpc.call("server", "svc", "echo", "after") == "after"
