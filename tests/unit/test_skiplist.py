"""Structural tests specific to the skip-list store.

Shared semantics are covered by the parameterized fixture in
test_sorted_store.py; these tests exercise tower mechanics and run the
differential check against SortedStore.
"""

import random

from repro.cluster import ClusterSpec
from repro.core.keys import HIGH, LOW, wrap
from repro.storage.skiplist import _MAX_LEVEL, SkipListStore
from repro.storage.sorted_store import SortedStore


class TestTowers:
    def test_heights_bounded(self):
        store = SkipListStore(seed=1)
        for i in range(500):
            store.insert(wrap(i), 1, i)
        node = store._head.forward[0]
        while node is not None:
            assert 1 <= node.height <= _MAX_LEVEL
            node = node.forward[0]
        store.check_invariants()

    def test_deterministic_given_seed(self):
        a, b = SkipListStore(seed=7), SkipListStore(seed=7)
        for i in range(100):
            a.insert(wrap(i), 1, i)
            b.insert(wrap(i), 1, i)
        # Same seed -> same tower shapes -> identical level chains.
        na, nb = a._head, b._head
        while na is not None and nb is not None:
            assert na.height == nb.height
            na, nb = na.forward[0], nb.forward[0]

    def test_unlink_cleans_every_level(self):
        store = SkipListStore(seed=2)
        for i in range(200):
            store.insert(wrap(i), 1, i)
        for i in range(0, 200, 2):
            store.remove_entry(wrap(i), 9)
        store.check_invariants()
        assert store.entry_count() == 100

    def test_coalesce_everything(self):
        store = SkipListStore(seed=3)
        for i in range(150):
            store.insert(wrap(i), 1, i)
        store.coalesce(LOW, HIGH, 5)
        store.check_invariants()
        assert store.entry_count() == 0
        assert store.lookup(wrap(75)).version == 5

    def test_snapshot_restore_roundtrip(self):
        store = SkipListStore(seed=4)
        for i in range(80):
            store.insert(wrap(i), 1, i)
        store.coalesce(wrap(10), wrap(20), 7)
        snap = store.snapshot()
        fresh = SkipListStore(seed=99)
        fresh.restore(snap)
        fresh.check_invariants()
        assert fresh.snapshot() == snap


class TestDifferential:
    def test_random_ops_match_sorted_store(self):
        rng = random.Random(44)
        a, b = SortedStore(), SkipListStore(seed=5)
        for i in range(4000):
            op = rng.random()
            k = wrap(rng.randint(0, 150))
            if op < 0.55:
                assert a.insert(k, i, i) == b.insert(k, i, i)
            elif op < 0.75:
                entries = [e.key for e in a.iter_entries()]
                ia = rng.randrange(len(entries) - 1)
                ib = rng.randrange(ia + 1, len(entries))
                assert a.coalesce(entries[ia], entries[ib], i) == b.coalesce(
                    entries[ia], entries[ib], i
                )
            elif op < 0.9:
                assert a.lookup(k) == b.lookup(k)
                if not k.is_low:
                    assert a.predecessor(k) == b.predecessor(k)
                if not k.is_high:
                    assert a.successor(k) == b.successor(k)
            elif a.contains(k) and not k.is_sentinel:
                assert a.remove_entry(k, i) == b.remove_entry(k, i)
            assert a.snapshot() == b.snapshot()
        b.check_invariants()


class TestClusterIntegration:
    def test_cluster_with_skiplist_store(self):
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", store="skiplist", seed=6))
        suite = cluster.suite
        for i in range(30):
            suite.insert(i, i)
        for i in range(0, 30, 3):
            suite.delete(i)
        for i in range(30):
            assert suite.lookup(i) == ((i % 3 != 0), i if i % 3 else None)
        cluster.check_invariants()

    def test_crash_recovery_with_skiplist(self):
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", store="skiplist", seed=7))
        for i in range(15):
            cluster.suite.insert(i, i)
        before = cluster.representative("A").store.snapshot()
        cluster.crash("A")
        cluster.recover("A")
        assert cluster.representative("A").store.snapshot() == before
