"""Unit coverage for the live-telemetry primitives (repro.obs.live).

WindowedView rate math is exercised under both clock shapes the service
can run on — the simulated clock and a wall-style monotonic stub — and
through its documented edge cases: a single sample (no rate), a window
wider than the history, empty windows, and counter resets.
"""

import pytest

from repro.net.clock import SimClock
from repro.obs.live import (
    RollingHistogram,
    SlowLog,
    SpaceSaving,
    WindowedView,
    flatten_numeric,
    format_stats,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import RecordingTracer, RingTracer


class FakeWallClock:
    """Monotonic seconds under test control (the WallClock shape)."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, delta: float) -> None:
        self.t += delta


CLOCKS = {
    "sim": lambda: SimClock(),
    "wall": lambda: FakeWallClock(),
}


@pytest.fixture(params=sorted(CLOCKS))
def clock(request):
    return CLOCKS[request.param]()


class TestFlattenNumeric:
    def test_nested_int_leaves_get_dotted_names(self):
        snap = {
            "suite.ops": {"lookups": 3, "failed": 0},
            "shard.routed": {"s0": 7, "s1": 2},
            "plain": 5,
        }
        assert flatten_numeric(snap) == {
            "suite.ops.lookups": 3,
            "suite.ops.failed": 0,
            "shard.routed.s0": 7,
            "shard.routed.s1": 2,
            "plain": 5,
        }

    def test_floats_bools_and_text_are_dropped(self):
        snap = {
            "hist": {"n": 4, "avg": 1.5, "max": 3.0},
            "clock": 12.25,
            "flag": True,
            "label": "x",
        }
        assert flatten_numeric(snap) == {"hist.n": 4}


class TestWindowedView:
    def test_basic_rate(self, clock):
        metrics = MetricsRegistry()
        ops = metrics.counter("ops")
        view = WindowedView(metrics, clock.now, window=10.0)
        view.sample()
        ops.inc(40)
        clock.advance(4.0)
        view.sample()
        rates = view.rates()
        assert rates.elapsed == pytest.approx(4.0)
        assert rates.get("ops") == pytest.approx(10.0)

    def test_single_sample_reports_nothing(self, clock):
        metrics = MetricsRegistry()
        metrics.counter("ops").inc(5)
        view = WindowedView(metrics, clock.now)
        view.sample()
        rates = view.rates()
        assert rates.elapsed == 0.0
        assert rates.rates == {}
        assert rates.get("ops") == 0.0

    def test_no_samples_reports_nothing(self, clock):
        view = WindowedView(MetricsRegistry(), clock.now)
        assert view.rates().rates == {}

    def test_window_picks_newest_old_enough_baseline(self, clock):
        metrics = MetricsRegistry()
        ops = metrics.counter("ops")
        view = WindowedView(metrics, clock.now, window=60.0)
        for _ in range(5):  # samples at t=0,2,4,6,8 with 10 ops between
            view.sample()
            ops.inc(10)
            clock.advance(2.0)
        view.sample()  # t=10, ops=50
        # A 3s window must difference against t=6 (age 4, the newest
        # sample at least 3s old), not all the way back to t=0.
        rates = view.rates(3.0)
        assert rates.elapsed == pytest.approx(4.0)
        assert rates.get("ops") == pytest.approx(20 / 4.0)

    def test_window_wider_than_history_uses_oldest(self, clock):
        metrics = MetricsRegistry()
        ops = metrics.counter("ops")
        view = WindowedView(metrics, clock.now)
        view.sample()
        ops.inc(30)
        clock.advance(3.0)
        view.sample()
        rates = view.rates(1e9)
        assert rates.elapsed == pytest.approx(3.0)
        assert rates.get("ops") == pytest.approx(10.0)

    def test_zero_elapsed_window_is_empty(self, clock):
        metrics = MetricsRegistry()
        metrics.counter("ops").inc(1)
        view = WindowedView(metrics, clock.now)
        view.sample()
        view.sample()  # same instant
        rates = view.rates()
        assert rates.elapsed == 0.0
        assert rates.rates == {}

    def test_counter_reset_uses_value_since_reset(self, clock):
        metrics = MetricsRegistry()
        ops = metrics.counter("ops")
        ops.inc(100)
        view = WindowedView(metrics, clock.now)
        view.sample()
        ops.reset()
        ops.inc(6)
        clock.advance(2.0)
        view.sample()
        # 6 - 100 is negative; the post-reset value is the best estimate.
        assert view.rates().get("ops") == pytest.approx(3.0)

    def test_new_counter_mid_window_counts_from_zero(self, clock):
        metrics = MetricsRegistry()
        view = WindowedView(metrics, clock.now)
        view.sample()
        metrics.counter("late").inc(8)
        clock.advance(4.0)
        view.sample()
        assert view.rates().get("late") == pytest.approx(2.0)

    def test_history_is_bounded(self, clock):
        metrics = MetricsRegistry()
        view = WindowedView(metrics, clock.now, history=4)
        for _ in range(10):
            view.sample()
            clock.advance(1.0)
        assert len(view) == 4

    def test_total_sums_prefixed_rates(self, clock):
        metrics = MetricsRegistry()
        counts = {"s0": 0, "s1": 0}
        metrics.provider("shard.routed", lambda: dict(counts))
        view = WindowedView(metrics, clock.now)
        view.sample()
        counts["s0"] = 6
        counts["s1"] = 2
        clock.advance(2.0)
        view.sample()
        assert view.rates().total("shard.routed") == pytest.approx(4.0)


class TestRollingHistogram:
    def test_window_forgets_old_samples(self):
        clock = FakeWallClock()
        hist = RollingHistogram(clock.now, window=10.0)
        hist.observe(100.0)
        clock.advance(11.0)
        hist.observe(1.0)
        snap = hist.snapshot()
        assert snap["n"] == 1
        assert snap["max"] == 1.0

    def test_percentiles_over_live_window(self):
        clock = FakeWallClock()
        hist = RollingHistogram(clock.now, window=60.0)
        for v in range(1, 101):
            hist.observe(float(v))
        snap = hist.snapshot()
        assert snap["n"] == 100
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)
        assert snap["max"] == 100.0

    def test_capacity_bounds_burst(self):
        clock = FakeWallClock()
        hist = RollingHistogram(clock.now, window=60.0, capacity=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.snapshot()["n"] == 10

    def test_empty_snapshot(self):
        hist = RollingHistogram(FakeWallClock().now)
        assert hist.snapshot() == {
            "n": 0, "avg": 0.0, "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for _ in range(5):
            sketch.offer("a")
        sketch.offer("b")
        assert sketch.top(2) == [("a", 5, 0), ("b", 1, 0)]

    def test_heavy_hitter_survives_churn(self):
        sketch = SpaceSaving(capacity=4)
        for i in range(1000):
            sketch.offer("hot")
            sketch.offer(f"cold-{i}")  # each cold key appears once
        top = sketch.top(1)
        assert top[0][0] == "hot"
        key, count, error = top[0]
        assert count - error >= 900  # true count is >= count - error

    def test_eviction_inherits_minimum(self):
        sketch = SpaceSaving(capacity=2)
        sketch.offer("a", 5)
        sketch.offer("b", 3)
        sketch.offer("c")  # evicts b (min=3); c reports 4 with error 3
        rows = dict((k, (c, e)) for k, c, e in sketch.top())
        assert "b" not in rows
        assert rows["c"] == (4, 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)


class TestSlowLog:
    def test_slowest_ranked_and_bounded(self):
        clock = FakeWallClock()
        tracer = RecordingTracer(clock.now)
        log = SlowLog(capacity=3)
        for i, ms in enumerate([5, 1, 9, 7]):
            span = tracer.span("service:GET", key=f"k{i}")
            with span:
                clock.advance(ms / 1000.0)
            log.record(span, verb="GET", key=f"k{i}", shard=0, trace=f"t{i}")
        assert len(log) == 3  # the oldest entry (5ms) fell off the ring
        slowest = log.slowest(2)
        assert [op.key for op in slowest] == ["k2", "k3"]
        assert slowest[0].duration == pytest.approx(0.009)
        top = slowest[0].to_dict()
        assert top["span"]["name"] == "service:GET"
        assert top["trace"] == "t2"


class TestRingTracer:
    def test_bounded_roots(self):
        tracer = RingTracer(capacity=3)
        for i in range(10):
            with tracer.span(f"op:{i}"):
                pass
        roots = tracer.finished_roots()
        assert [s.name for s in roots] == ["op:7", "op:8", "op:9"]

    def test_nesting_and_reset_like_parent(self):
        tracer = RingTracer(capacity=4)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.finished_roots()
        assert [c.name for c in root.children] == ["inner"]
        tracer.reset()
        assert tracer.finished_roots() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)


class TestFormatStats:
    def test_renders_table_frame(self):
        stats = {
            "clock": 12.5,
            "shards": 2,
            "window_seconds": 3.0,
            "ops_per_s": 123.4,
            "service": {
                "ops_per_s": 130.0,
                "err_per_s": 0.0,
                "rpc_per_s": 800.0,
                "rpc_err_per_s": 0.0,
                "retry_per_s": 0.0,
            },
            "per_shard": {
                "s0": {
                    "ops_per_s": 100.0,
                    "routed": 400,
                    "err_per_s": 0.0,
                    "latency": {"p50": 0.002, "p99": 0.009},
                    "hot_keys": [["h0", 50, 0]],
                    "membership": {"A": "up", "B": "up", "C": "joining"},
                },
                "s1": {
                    "ops_per_s": 23.4,
                    "routed": 90,
                    "err_per_s": 1.5,
                    "latency": {"p50": 0.001, "p99": 0.004},
                    "hot_keys": [],
                    "membership": {"A": "up", "B": "up", "C": "up"},
                },
            },
        }
        frame = format_stats(stats)
        assert "repro top" in frame
        assert "s0" in frame and "s1" in frame
        assert "h0" in frame
        assert "C:joining" in frame
        assert "2.00" in frame  # s0 p50 in ms
