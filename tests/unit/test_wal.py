"""Unit tests for write-ahead logging and recovery."""

import pytest

from repro.core.keys import wrap
from repro.storage.sorted_store import SortedStore
from repro.storage.wal import (
    OP_CHECKPOINT,
    OP_COMMIT,
    WalRecord,
    WriteAheadLog,
)


def committed_insert(log, txn_id, key, version, value):
    log.log_insert(txn_id, wrap(key), version, value)
    log.log_commit(txn_id)


class TestAppend:
    def test_lsns_monotone(self):
        log = WriteAheadLog()
        r1 = log.log_insert(1, wrap("a"), 1, "A")
        r2 = log.log_commit(1)
        assert r2.lsn == r1.lsn + 1

    def test_iteration_and_len(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        assert len(log) == 2
        assert [r.kind for r in log] == ["insert", "commit"]


class TestReplay:
    def test_committed_ops_replayed(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        committed_insert(log, 2, "b", 1, "B")
        store = SortedStore()
        applied = log.replay_into(store)
        assert applied == 2
        assert store.lookup(wrap("a")).present
        assert store.lookup(wrap("b")).present

    def test_uncommitted_ops_skipped(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        log.log_insert(2, wrap("b"), 1, "B")  # no commit: presumed abort
        store = SortedStore()
        log.replay_into(store)
        assert store.lookup(wrap("a")).present
        assert not store.lookup(wrap("b")).present

    def test_aborted_ops_skipped(self):
        log = WriteAheadLog()
        log.log_insert(1, wrap("a"), 1, "A")
        log.log_abort(1)
        store = SortedStore()
        log.replay_into(store)
        assert not store.lookup(wrap("a")).present

    def test_coalesce_replayed_in_order(self):
        log = WriteAheadLog()
        log.log_insert(1, wrap("a"), 1, "A")
        log.log_insert(1, wrap("b"), 1, "B")
        log.log_insert(1, wrap("c"), 1, "C")
        log.log_coalesce(1, wrap("a"), wrap("c"), 2)
        log.log_commit(1)
        store = SortedStore()
        log.replay_into(store)
        assert not store.lookup(wrap("b")).present
        assert store.lookup(wrap("b")).version == 2

    def test_replay_reproduces_live_store(self):
        # The golden property: replaying the log of committed transactions
        # into a fresh store reproduces the live store exactly.
        live = SortedStore()
        log = WriteAheadLog()
        for i, key in enumerate(["m", "d", "x", "f"]):
            log.log_insert(i, wrap(key), i + 1, key.upper())
            live.insert(wrap(key), i + 1, key.upper())
            log.log_commit(i)
        log.log_coalesce(9, wrap("d"), wrap("m"), 7)
        live.coalesce(wrap("d"), wrap("m"), 7)
        log.log_commit(9)
        recovered = SortedStore()
        log.replay_into(recovered)
        assert recovered.snapshot() == live.snapshot()

    def test_extra_committed_resolves_in_doubt(self):
        log = WriteAheadLog()
        log.log_insert(5, wrap("k"), 1, "K")
        log.log_prepare(5)  # prepared, never locally committed
        store = SortedStore()
        log.replay_into(store)
        assert not store.lookup(wrap("k")).present
        store2 = SortedStore()
        log.replay_into(store2, extra_committed={5})
        assert store2.lookup(wrap("k")).present


class TestInDoubt:
    def test_in_doubt_detection(self):
        log = WriteAheadLog()
        log.log_prepare(1)
        log.log_commit(1)
        log.log_prepare(2)  # in doubt
        log.log_prepare(3)
        log.log_abort(3)
        assert log.in_doubt_txns() == {2}

    def test_committed_txns(self):
        log = WriteAheadLog()
        committed_insert(log, 4, "x", 1, "X")
        log.log_insert(5, wrap("y"), 1, "Y")
        assert log.committed_txns() == {4}


class TestCheckpoint:
    def test_checkpoint_truncates(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        store = SortedStore()
        store.insert(wrap("a"), 1, "A")
        log.log_checkpoint(store.snapshot())
        assert len(log) == 1
        assert log.records[0].kind == OP_CHECKPOINT

    def test_replay_from_checkpoint(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        store = SortedStore()
        store.insert(wrap("a"), 1, "A")
        log.log_checkpoint(store.snapshot())
        committed_insert(log, 2, "b", 2, "B")
        recovered = SortedStore()
        log.replay_into(recovered)
        assert recovered.lookup(wrap("a")).present
        assert recovered.lookup(wrap("b")).present

    def test_lsn_continues_after_checkpoint(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        store = SortedStore()
        log.log_checkpoint(store.snapshot())
        record = log.log_commit(9)
        assert record.lsn > 3


class TestSnapshotReplayInterplay:
    """Checkpoint-snapshot restore + tail replay vs continuous execution."""

    def _churned(self):
        """A live store and its log, with a checkpoint mid-history."""
        live = SortedStore()
        log = WriteAheadLog()
        for i, key in enumerate(["m", "d", "x"]):
            log.log_insert(i, wrap(key), i + 1, key.upper())
            live.insert(wrap(key), i + 1, key.upper())
            log.log_commit(i)
        log.log_checkpoint(live.snapshot())  # truncates to the snapshot
        log.log_insert(7, wrap("b"), 5, "B")
        live.insert(wrap("b"), 5, "B")
        log.log_commit(7)
        log.log_coalesce(8, wrap("b"), wrap("m"), 9)
        live.coalesce(wrap("b"), wrap("m"), 9)
        log.log_commit(8)
        return live, log

    def test_restored_snapshot_plus_tail_is_bit_identical(self):
        # Recovery = restore the checkpoint snapshot, replay the tail.
        # The result must equal continuous execution exactly: entries,
        # versions, values, and every gap version.
        live, log = self._churned()
        recovered = SortedStore()
        log.replay_into(recovered)
        assert recovered.snapshot() == live.snapshot()

    def test_replay_is_idempotent_across_recoveries(self):
        # Crash-during-recovery: a second (and third) replay of the same
        # log must land on the same bytes — replay is a pure function of
        # the log.
        live, log = self._churned()
        snapshots = []
        for _ in range(3):
            store = SortedStore()
            log.replay_into(store)
            snapshots.append(store.snapshot())
        assert snapshots[0] == snapshots[1] == snapshots[2] == live.snapshot()

    def test_replay_unchanged_by_serialization_after_checkpoint(self):
        live, log = self._churned()
        revived = WriteAheadLog.from_bytes(log.to_bytes())
        store = SortedStore()
        revived.replay_into(store)
        assert store.snapshot() == live.snapshot()


class TestShippingWindow:
    """The log-shipping surface replica bootstrap polls."""

    def test_records_since_returns_the_tail(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        watermark = log.next_lsn - 1
        committed_insert(log, 2, "b", 2, "B")
        tail = log.records_since(watermark)
        assert [r.kind for r in tail] == ["insert", "commit"]
        assert all(r.lsn > watermark for r in tail)

    def test_records_since_at_head_is_empty(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        assert log.records_since(log.next_lsn - 1) == []

    def test_truncated_window_raises_recovery_error(self):
        from repro.core.errors import RecoveryError

        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        store = SortedStore()
        store.insert(wrap("a"), 1, "A")
        log.log_checkpoint(store.snapshot())  # discards LSNs 1..2
        with pytest.raises(RecoveryError):
            log.records_since(0)  # asks for records before the checkpoint


class TestPersistence:
    def test_bytes_roundtrip(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        log.log_coalesce(2, wrap("a"), wrap("a"), 3)  # payload shape only
        data = log.to_bytes()
        restored = WriteAheadLog.from_bytes(data)
        assert [r.kind for r in restored] == [r.kind for r in log]
        # LSN counter survives: new records continue the sequence.
        nxt = restored.log_commit(2)
        assert nxt.lsn == len(log) + 1

    def test_restored_log_replays_identically(self):
        log = WriteAheadLog()
        committed_insert(log, 1, "a", 1, "A")
        committed_insert(log, 2, "b", 2, "B")
        a, b = SortedStore(), SortedStore()
        log.replay_into(a)
        WriteAheadLog.from_bytes(log.to_bytes()).replay_into(b)
        assert a.snapshot() == b.snapshot()


class TestRecordShape:
    def test_record_is_frozen(self):
        record = WalRecord(1, 1, OP_COMMIT)
        with pytest.raises(AttributeError):
            record.lsn = 2
