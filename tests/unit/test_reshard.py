"""Unit tests for live resharding: the Resharder state machine, epoch
enforcement, the dual-write window, abort/close semantics, the reshard
auditor, and the hot-shard controller."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.core.errors import ConfigurationError, StaleEpochError
from repro.shard import (
    RangeShardMap,
    ReshardController,
    ShardedDirectory,
    VersionedShardMap,
)


def make_directory(boundaries=("m",), seed=7, config="3-2-2"):
    return ShardedDirectory.create(
        ClusterSpec(config=config, seed=seed),
        shards=len(boundaries) + 1,
        shard_map=RangeShardMap(list(boundaries)),
    )


def seeded(directory, n=16):
    """Insert ``key00..`` and return the model dict."""
    model = {}
    for i in range(n):
        key, value = f"key{i:02d}", f"v{i}"
        directory.insert(key, value)
        model[key] = value
    return model


class TestResharderPhases:
    def test_phases_run_in_order(self):
        with make_directory() as d:
            seeded(d)
            resharder = d.begin_split("key08")
            assert resharder.phase == "copy"
            assert not resharder.dual_write
            resharder.step()
            assert resharder.phase == "dual_write"
            assert resharder.dual_write
            resharder.step()  # dwell
            assert resharder.phase == "cutover"
            resharder.step()
            assert resharder.phase == "drain"
            assert not resharder.dual_write  # reads flipped at cutover
            assert d.epoch == 1  # the epoch installs at cutover...
            resharder.step()
            assert resharder.done
            assert d.resharder is None  # ...and drain retires the machine

    def test_migration_moves_exactly_the_delta_range(self):
        with make_directory() as d:
            model = seeded(d)
            d.begin_split("key08").run()
            record = d.reshard_log[-1]
            assert (record.low, record.high) == ("key08", "m")
            assert record.moved == 8  # key08..key15
            assert record.violations == []
            for key, value in model.items():
                assert d.lookup(key) == (True, value)
                want = 2 if "key08" <= key < "m" else 0
                assert d.shard_for(key) == want

    def test_epoch_history_and_reshard_log(self):
        with make_directory() as d:
            seeded(d)
            d.begin_split("key08").run()
            assert sorted(d.map_history) == [0, 1]
            assert len(d.reshard_log) == 1
            assert d.reshard_status() == {
                "epoch": 1,
                "active": False,
                "migrations": 1,
            }
            assert d.metrics.snapshot()["reshard.migrations"] == 1

    def test_concurrent_reshard_rejected(self):
        with make_directory() as d:
            seeded(d)
            d.begin_split("key04")
            with pytest.raises(ConfigurationError):
                d.begin_split("key10")

    def test_deleted_keys_stay_deleted_across_migration(self):
        # The COPY phase must merge gap (deletion) versions, or a
        # deleted key's stale entry would resurrect on the target.
        with make_directory() as d:
            seeded(d)
            d.delete("key10")
            d.begin_split("key08").run()
            assert d.lookup("key10")[0] is False
            assert "key10" not in d.authoritative_state()


class TestDualWriteWindow:
    def test_writes_to_moving_keys_mirror_to_target(self):
        with make_directory() as d:
            seeded(d)
            resharder = d.begin_split("key08")
            resharder.step()  # copy done -> dual_write
            d.update("key09", "rewritten")  # moving key: both suites
            d.update("key01", "stays")  # non-moving key: source only
            assert resharder.mirrored == 1
            target = d.clusters[resharder.target].suite
            assert target.lookup("key09") == (True, "rewritten")
            resharder.run()
            assert d.lookup("key09") == (True, "rewritten")
            assert d.lookup("key01") == (True, "stays")

    def test_insert_and_delete_mirror_too(self):
        with make_directory() as d:
            seeded(d)
            resharder = d.begin_split("key08")
            resharder.step()
            d.insert("key99", "late")  # born inside the moving range
            d.delete("key12")
            assert resharder.mirrored == 2
            resharder.run()
            assert d.lookup("key99") == (True, "late")
            assert d.lookup("key12")[0] is False
            assert d.shard_for("key99") == resharder.target

    def test_reads_stay_on_source_until_cutover(self):
        with make_directory() as d:
            seeded(d)
            resharder = d.begin_split("key08")
            resharder.step()
            assert d.epoch == 0
            assert d.shard_for("key09") == resharder.source
            d.require_epoch("key09", 0)  # a stale client is still right


class TestFinalStateOracle:
    def test_bit_identical_to_never_resharded_control(self):
        # The same operation stream against a resharded and a control
        # directory must converge to the identical authoritative state.
        ops = [("insert", f"k{i:02d}", f"v{i}") for i in range(20)]
        ops += [("update", f"k{i:02d}", f"w{i}") for i in range(0, 20, 3)]
        ops += [("delete", f"k{i:02d}", None) for i in (4, 11, 17)]

        def run(reshard_at):
            d = make_directory(boundaries=("zz",))  # everything on s0
            resharder = None
            for index, (kind, key, value) in enumerate(ops):
                if index == reshard_at:
                    resharder = d.begin_split("k10")
                if resharder is not None and not resharder.done:
                    resharder.step()
                getattr(d, kind)(*(a for a in (key, value) if a is not None))
            if resharder is not None and not resharder.done:
                resharder.run()
            state = d.authoritative_state()
            auditor = d.make_auditor()
            auditor.run()
            auditor.audit_reshard()
            assert auditor.report.violations == []
            d.close()
            return state

        assert run(reshard_at=None) == run(reshard_at=8)

    def test_audit_reshard_catches_key_left_on_source(self):
        with make_directory() as d:
            seeded(d)
            d.begin_split("key08").run()
            record = d.reshard_log[-1]
            # Sabotage: resurrect a moved key on its old owner.
            d.clusters[record.source].suite.insert("key09x", "ghost")
            auditor = d.make_auditor()
            auditor.audit_reshard()
            assert any(
                v.key == "key09x" and v.check == "reshard"
                for v in auditor.report.violations
            )


class TestAbortAndClose:
    def test_abort_mid_copy_leaves_old_epoch_authoritative(self):
        with make_directory() as d:
            model = seeded(d)
            resharder = d.begin_split("key08")
            resharder.abort()
            assert d.epoch == 0
            assert d.resharder is None
            for key, value in model.items():
                assert d.lookup(key) == (True, value)
            # A fresh attempt succeeds after the abort.
            assert d.begin_split("key08").run().violations == []

    def test_abort_after_cutover_rejected(self):
        with make_directory() as d:
            seeded(d)
            resharder = d.begin_split("key08")
            for _ in range(3):  # copy, dwell, cutover
                resharder.step()
            assert resharder.phase == "drain"
            with pytest.raises(ConfigurationError):
                resharder.abort()

    def test_close_mid_copy_is_idempotent_and_aborts(self):
        d = make_directory()
        seeded(d)
        resharder = d.begin_split("key08")
        d.close()
        assert resharder.phase == "aborted"
        assert not resharder.dual_write  # no dangling mirror hook
        assert d.resharder is None
        d.close()  # second close: a no-op, not an error

    def test_close_mid_drain_finishes_the_migration(self):
        d = make_directory()
        seeded(d)
        resharder = d.begin_split("key08")
        for _ in range(3):
            resharder.step()
        assert resharder.phase == "drain"
        d.close()
        assert resharder.done
        assert len(d.reshard_log) == 1

    def test_close_propagates_to_every_suite(self):
        # All suites (including one added live by a split) share one
        # transport; close() must release it exactly once, covering the
        # late-added shard too.  The asyncio transport records closure.
        d = ShardedDirectory.create(
            ClusterSpec(config="1-1-1", seed=7, transport="asyncio"),
            shards=2,
            shard_map=RangeShardMap(["m"]),
        )
        seeded(d, n=8)
        d.begin_split("key04").run()  # 3 suites after the split
        assert len(d.clusters) == 3
        d.close()
        assert d.transport._closed
        d.close()  # still idempotent with the extra shard attached


class TestEpochEnforcement:
    def test_stale_epoch_raises_only_for_moved_keys(self):
        with make_directory() as d:
            seeded(d)
            d.begin_split("key08").run()
            d.require_epoch("key01", 0)  # unmoved: the old map was right
            d.require_epoch("key09", 1)
            with pytest.raises(StaleEpochError) as excinfo:
                d.require_epoch("key09", 0)  # moved: stale map misroutes
            assert excinfo.value.epoch == 1
            with pytest.raises(StaleEpochError):
                d.require_epoch("key01", 99)  # unknown epoch: no history

    def test_install_map_requires_successor_epoch(self):
        with make_directory() as d:
            current = d.shard_map
            with pytest.raises(ConfigurationError):
                d.install_map(current.split("a").split("b"))  # skips epoch 1


class TestReshardController:
    def test_auto_splits_hot_shard_under_skew(self):
        spec = ClusterSpec(config="3-2-2", seed=11)
        with ShardedDirectory.create(
            spec, shards=4, shard_map=RangeShardMap.uniform(4)
        ) as d:
            controller = ReshardController(
                d, hot_factor=2.0, max_splits=1, window=500.0
            )
            import random

            rng = random.Random(4)
            keys = sorted({rng.random() ** 4 for _ in range(80)})
            for i, key in enumerate(keys):
                d.insert(key, i)
            for round_index in range(40):
                for key in keys[:: 7]:
                    d.lookup(key)  # skewed read pressure on shard 0
                if controller.tick() == "split":
                    break
            controller.finish()
            assert d.epoch == 1
            assert len(d.reshard_log) == 1
            assert d.reshard_log[0].source == 0
            auditor = d.make_auditor()
            auditor.run()
            auditor.audit_reshard()
            assert auditor.report.violations == []

    def test_max_splits_bounds_the_controller(self):
        spec = ClusterSpec(config="1-1-1", seed=3)
        with ShardedDirectory.create(
            spec, shards=2, shard_map=RangeShardMap.uniform(2)
        ) as d:
            controller = ReshardController(
                d, hot_factor=1.5, max_splits=0, window=500.0
            )
            for i in range(12):
                d.insert(i / 100.0, i)
            for _ in range(10):
                for i in range(12):
                    d.lookup(i / 100.0)
                assert controller.tick() is None
            assert d.epoch == 0

    def test_hot_factor_validated(self):
        with make_directory() as d:
            with pytest.raises(ConfigurationError):
                ReshardController(d, hot_factor=1.0)

    def test_single_epoch_wrap_is_free(self):
        # A never-resharded directory: plain maps wrap at epoch 0 and
        # the mirror hook stays a cheap None check.
        with make_directory() as d:
            assert isinstance(d.shard_map, VersionedShardMap)
            assert d.epoch == 0
            assert d.resharder is None
            seeded(d, n=4)
            assert d.reshard_status() == {
                "epoch": 0,
                "active": False,
                "migrations": 0,
            }
