"""Unit tests for the scatter-gather quorum engine.

Three layers are covered here:

* the RPC batch primitive itself (``RpcEndpoint.scatter`` /
  ``RpcBatch``) — max-not-sum clock accounting, per-member fault
  dispositions, in-batch re-issue, hedged early completion;
* the traced form — per-attempt span attribution and the ``fanout:``
  envelope spans the analyzer tiles against;
* the simulation driver — ``fanout="serial"`` must stay bit-identical
  to the pre-fan-out engine (pinned baselines), and the parallel and
  hedged modes must change *time* without changing traffic, answers,
  or replicated state.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core.errors import NodeDownError, RpcTimeoutError
from repro.net.failures import LossEvent, ScriptedLoss
from repro.net.network import Network, uniform_latency
from repro.net.rpc import RpcCall, RpcEndpoint
from repro.obs.spans import RecordingTracer
from repro.sim.driver import SimulationSpec, run_simulation
from repro.sim.workload import OpMix


class _Tally:
    """Service that counts invocations (to observe applied effects)."""

    def __init__(self):
        self.calls = 0

    def put(self, x):
        self.calls += 1
        return ("stored", x)


SERVERS = ("a", "b", "c")


def _net(faults=None):
    net = Network(latency=uniform_latency(1.0))
    tallies = {}
    for name in SERVERS:
        tallies[name] = _Tally()
        net.add_node(name).host("svc", tallies[name])
    if faults is not None:
        net.install_faults(faults)
    return net, tallies


def _calls(retries=0):
    return [
        RpcCall(name, "svc", "put", args=(i,), retries=retries, key=name)
        for i, name in enumerate(SERVERS)
    ]


class TestScatterAccounting:
    def test_batch_costs_max_not_sum(self):
        net, tallies = _net()
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        waited = batch.complete_all()
        # One round trip of simulated time for the whole width-3 batch,
        # where the serial loop would charge three.
        assert net.clock.now() == 2.0
        assert [r.value for r in waited] == [("stored", i) for i in range(3)]
        assert all(r.ok and r.effect_applied for r in waited)
        assert net.stats.messages == 6
        assert net.stats.rpc_rounds == 3
        assert all(t.calls == 1 for t in tallies.values())

    def test_width_one_scatter_matches_serial_call(self):
        serial_net, _ = _net()
        serial = RpcEndpoint(serial_net, origin="client")
        value = serial.call("a", "svc", "put", 0)

        batch_net, _ = _net()
        rpc = RpcEndpoint(batch_net, origin="client")
        batch = rpc.scatter(_calls()[:1])
        (reply,) = batch.complete_all()

        assert reply.value == value
        assert batch_net.clock.now() == serial_net.clock.now() == 2.0
        assert batch_net.stats.messages == serial_net.stats.messages == 2
        assert batch_net.stats.rpc_rounds == serial_net.stats.rpc_rounds == 1
        assert (
            batch_net.stats.payload_items == serial_net.stats.payload_items
        )

    def test_dropped_reply_costs_max_of_timeout_and_slowest_peer(self):
        net, tallies = _net(ScriptedLoss([LossEvent("reply", nth=0)]))
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        batch.complete_all()
        # The lost member expires at rpc_timeout (20) > the peers'
        # round trips (2); waiting on everything costs the max, not
        # 20 + 2 + 2.
        assert net.clock.now() == max(net.rpc_timeout, 2.0) == 20.0
        lost = batch.replies[0]
        assert isinstance(lost.error, RpcTimeoutError)
        assert lost.arrival == 20.0
        # A lost *reply* still executed the call on the server.
        assert lost.effect_applied
        assert tallies["a"].calls == 1
        assert [r.arrival for r in batch.replies[1:]] == [2.0, 2.0]
        assert net.stats.dropped == 1
        assert net.stats.messages == 6  # request+dropped reply still sent
        assert net.stats.rpc_rounds == 2

    def test_lost_request_applies_no_effect(self):
        net, tallies = _net(ScriptedLoss([LossEvent("request", nth=0)]))
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        batch.complete_all()
        assert not batch.replies[0].effect_applied
        assert tallies["a"].calls == 0
        assert tallies["b"].calls == tallies["c"].calls == 1
        assert net.stats.messages == 5  # lost request = 1 message

    def test_in_batch_retry_runs_on_own_timeline(self):
        net, tallies = _net(ScriptedLoss([LossEvent("reply", nth=0)]))
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls(retries=1))
        batch.complete_all()
        retried = batch.replies[0]
        assert retried.ok
        assert retried.attempts == 2
        assert retried.timeouts == 1
        # Timeout (20) then a fresh round trip (2), all on this member's
        # own virtual timeline; peers were never delayed by it.
        assert retried.arrival == 22.0
        assert [r.arrival for r in batch.replies[1:]] == [2.0, 2.0]
        assert net.clock.now() == 22.0
        assert tallies["a"].calls == 2  # dropped-reply effect + re-issue

    def test_hedged_gather_skips_slow_member(self):
        net, _ = _net(ScriptedLoss([LossEvent("reply", nth=0)]))
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        waited, sufficient = batch.complete_first(2, lambda r: 1)
        assert sufficient
        assert [r.call.key for r in waited] == ["b", "c"]
        # The gather returns at the fast members' arrival...
        assert net.clock.now() == 2.0
        # ...but the timed-out member executed the call and holds locks
        # until its timeout expires; the caller must settle that.
        assert batch.lock_deadline == 20.0

    def test_hedged_gather_degenerates_when_insufficient(self):
        net, _ = _net()
        net.node("b").crash()
        net.node("c").crash()
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        waited, sufficient = batch.complete_first(2, lambda r: 1)
        assert not sufficient
        assert len(waited) == 3  # had to sit out every member to learn it
        assert isinstance(batch.replies[1].error, NodeDownError)

    def test_down_member_fails_instantly(self):
        net, tallies = _net()
        net.node("a").crash()
        rpc = RpcEndpoint(net, origin="client")
        batch = rpc.scatter(_calls())
        batch.complete_all()
        down = batch.replies[0]
        assert isinstance(down.error, NodeDownError)
        assert not down.effect_applied
        assert down.arrival == 0.0  # nothing sent, nothing waited for
        assert tallies["a"].calls == 0
        assert net.clock.now() == 2.0


class TestScatterSpans:
    def _traced(self, faults=None):
        net, tallies = _net(faults)
        tracer = RecordingTracer(now=net.clock.now)
        return net, tallies, tracer, RpcEndpoint(net, "client", tracer=tracer)

    def test_fanout_envelope_and_member_timelines(self):
        net, _, tracer, rpc = self._traced()
        batch = rpc.scatter(_calls(), label="rep_lookup")
        batch.complete_all()
        (root,) = tracer.finished_roots()
        assert root.name == "fanout:rep_lookup"
        assert root.attrs["width"] == 3
        assert root.attrs["waited_on"] == 3
        assert root.attrs["hedged"] is False
        assert (root.start, root.end) == (0.0, 2.0)
        assert [c.name for c in root.children] == ["rpc:svc.put"] * 3
        # All members share the scatter instant but own their arrivals.
        assert all((c.start, c.end) == (0.0, 2.0) for c in root.children)

    def test_per_attempt_span_attribution(self):
        net, _, tracer, rpc = self._traced(
            ScriptedLoss([LossEvent("reply", nth=0)])
        )
        batch = rpc.scatter(_calls(retries=1))
        batch.complete_all()
        (root,) = tracer.finished_roots()
        # Four rpc spans: the retried member contributes two attempts.
        spans = root.children
        assert len(spans) == 4
        first, reissue = spans[0], spans[1]
        assert first.attrs["lost"] == "reply"
        assert "attempt" not in first.attrs  # first tries are unlabelled
        assert first.status == "RpcTimeoutError"
        assert (first.start, first.end) == (0.0, 20.0)
        # Only the failed member re-issues, carrying its own attempt
        # number — batches never share the endpoint-level counter.
        assert reissue.attrs["attempt"] == 1
        assert reissue.status == "ok"
        assert (reissue.start, reissue.end) == (20.0, 22.0)
        assert all("attempt" not in s.attrs for s in spans[2:])
        # The envelope covers the slowest member's full attempt chain.
        assert (root.start, root.end) == (0.0, 22.0)

    def test_hedged_span_marks_waited_subset(self):
        net, _, tracer, rpc = self._traced(
            ScriptedLoss([LossEvent("reply", nth=0)])
        )
        batch = rpc.scatter(_calls())
        batch.complete_first(2, lambda r: 1)
        (root,) = tracer.finished_roots()
        assert root.attrs["waited_on"] == 2
        assert root.attrs["hedged"] is True
        assert (root.start, root.end) == (0.0, 2.0)


#: (spec, expected traffic/outcome) pairs captured by running the
#: pre-fan-out serial engine; ``fanout="serial"`` must reproduce them
#: bit-for-bit — same message counts, same simulated latency, same
#: final directory — or the refactor has changed the paper baseline.
SERIAL_BASELINES = [
    (
        SimulationSpec(
            config="3-2-2", directory_size=50, operations=400, seed=11
        ),
        {
            "messages": 11476,
            "rpc_rounds": 5738,
            "payload_items": 5738,
            "sim_ticks": 11476.0,
            "final_size": 51,
        },
    ),
    (
        SimulationSpec(
            config="3-2-2",
            directory_size=50,
            operations=300,
            seed=11,
            loss=0.05,
            retries=2,
            verify_model=True,
        ),
        {
            "messages": 9392,
            "rpc_rounds": 4341,
            "dropped": 467,
            "sim_ticks": 18046.04707030844,
            "final_size": 49,
        },
    ),
    (
        SimulationSpec(
            config="4-2-3",
            directory_size=40,
            operations=250,
            seed=7,
            neighbor_batch_size=3,
            read_repair=True,
        ),
        {
            "messages": 8584,
            "rpc_rounds": 4292,
            "payload_items": 4900,
            "sim_ticks": 8584.0,
            "final_size": 46,
        },
    ),
]


class TestSerialSeedEquivalence:
    @pytest.mark.parametrize(
        "spec,expected",
        SERIAL_BASELINES,
        ids=["perfect", "lossy", "batched-neighbors"],
    )
    def test_serial_matches_pre_fanout_baseline(self, spec, expected):
        assert spec.fanout == "serial"  # the default stays paper-faithful
        result = run_simulation(spec)
        for key, value in expected.items():
            if key in ("sim_ticks", "final_size"):
                assert getattr(result, key) == value, key
            else:
                assert result.traffic[key] == value, key
        assert result.failed_operations == 0
        assert result.model_mismatches == 0


#: Mix with lookups — the default mix has none, and the hedged read
#: path is the part of the engine worth exercising here.
_MIX = OpMix(insert=1, update=1, delete=1, lookup=2)


def _mode_spec(mode, **overrides):
    base = dict(
        config="3-2-2",
        directory_size=30,
        operations=150,
        seed=11,
        mix=_MIX,
        fanout=mode,
        verify_model=True,
    )
    base.update(overrides)
    return SimulationSpec(**base)


def _run_with_state(mode, **overrides):
    from repro.cluster import DirectoryCluster

    spec = _mode_spec(mode, **overrides)
    cluster = DirectoryCluster.create(ClusterSpec(config=spec.config, seed=spec.seed, tracer=RecordingTracer() if spec.trace_spans else None, fanout=mode, hedge_extra=spec.hedge_extra))
    result = run_simulation(spec, cluster=cluster)
    return result, cluster.suite.authoritative_state()


class TestFanoutModes:
    def test_parallel_and_hedged_match_serial_state(self):
        serial, serial_state = _run_with_state("serial")
        parallel, parallel_state = _run_with_state("parallel")
        hedged, hedged_state = _run_with_state("hedged")

        # Fan-out reorders time, not traffic or outcomes.
        assert parallel_state == serial_state
        assert hedged_state == serial_state
        assert parallel.traffic["messages"] == serial.traffic["messages"]
        assert parallel.sim_ticks < serial.sim_ticks
        assert hedged.sim_ticks <= parallel.sim_ticks
        for result in (serial, parallel, hedged):
            assert result.failed_operations == 0
            assert result.model_mismatches == 0

    def test_fanout_metrics_only_populate_in_fanout_modes(self):
        serial, _ = _run_with_state("serial")
        parallel, _ = _run_with_state("parallel")
        assert serial.metrics["suite.fanout.width"]["n"] == 0
        width = parallel.metrics["suite.fanout.width"]
        assert width["n"] > 0
        assert width["max"] >= 2
        # Uniform perfect network: every batch member arrives together,
        # so hedging saves nothing and the gauge nets out to zero.
        assert parallel.metrics["suite.fanout.straggler_ticks_saved"] == 0.0

    def test_traced_fanout_phases_tile_exactly(self):
        from repro.obs.analyze import PHASES, _credit_phases

        for mode in ("parallel", "hedged"):
            result, _ = _run_with_state(mode, trace_spans=True)
            assert result.spans
            for op_span in result.spans:
                sums = dict.fromkeys(PHASES, 0.0)
                _credit_phases(op_span, sums)
                assert sum(sums.values()) == pytest.approx(
                    op_span.duration, abs=1e-9
                )

    def test_invalid_fanout_rejected(self):
        from repro.cluster import DirectoryCluster

        with pytest.raises(ValueError):
            DirectoryCluster.create(ClusterSpec(config="3-2-2", fanout="sideways"))
