"""Unit tests for the analytic delete-overhead model."""

import pytest

from repro.core.config import SuiteConfig
from repro.sim.analytic import predict, predict_xyz


class TestModelShape:
    def test_322_prediction_near_paper(self):
        p = predict_xyz("3-2-2", directory_size=100)
        # Paper simulation: 1.33 / 0.88 / 0.44.  "Similar results."
        assert p.entries_in_ranges_coalesced == pytest.approx(1.33, abs=0.25)
        assert p.deletions_while_coalescing == pytest.approx(0.88, abs=0.25)
        assert p.insertions_while_coalescing == pytest.approx(0.44, abs=0.15)

    def test_statistics_independent_of_directory_size(self):
        # Figure 15's observation: the statistics "do not vary
        # significantly with directory size" — the model predicts exact
        # independence.
        small = predict_xyz("3-2-2", directory_size=100)
        large = predict_xyz("3-2-2", directory_size=10_000)
        assert small.entries_in_ranges_coalesced == pytest.approx(
            large.entries_in_ranges_coalesced
        )
        assert small.deletions_while_coalescing == pytest.approx(
            large.deletions_while_coalescing
        )

    def test_ghost_count_scales_with_size(self):
        small = predict_xyz("3-2-2", directory_size=100)
        large = predict_xyz("3-2-2", directory_size=1000)
        assert large.ghosts_per_replica == pytest.approx(
            10 * small.ghosts_per_replica
        )

    def test_write_all_has_no_ghosts(self):
        p = predict(SuiteConfig.uniform(3, 1, 3))
        assert p.ghosts_per_replica == 0.0
        assert p.deletions_while_coalescing == 0.0

    def test_single_replica_trivial(self):
        p = predict_xyz("1-1-1")
        assert p.copy_density == pytest.approx(1.0)
        assert p.ghosts_per_replica == 0.0
        assert p.insertions_while_coalescing == pytest.approx(0.0)

    def test_more_replicas_more_overhead(self):
        small = predict_xyz("3-2-2")
        large = predict_xyz("5-3-3")
        assert (
            large.deletions_while_coalescing > small.deletions_while_coalescing
        )

    def test_copy_density_bounded(self):
        for spec in ("1-1-1", "3-2-2", "5-3-3", "4-2-3", "7-4-4"):
            p = predict_xyz(spec)
            assert 0.0 < p.copy_density <= 1.0
