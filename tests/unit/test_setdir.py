"""Unit tests for the replicated set abstraction."""

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.setdir import ReplicatedSet


def fresh_set(seed=1):
    return ReplicatedSet.over(DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=seed)))


class TestSetSemantics:
    def test_add_and_contains(self):
        s = fresh_set()
        assert s.add("x") is True
        assert s.contains("x")
        assert "x" in s

    def test_add_idempotent(self):
        s = fresh_set()
        assert s.add("x") is True
        assert s.add("x") is False  # no error, unlike directory insert
        assert s.elements() == ["x"]

    def test_remove_idempotent(self):
        s = fresh_set()
        s.add("x")
        assert s.remove("x") is True
        assert s.remove("x") is False
        assert not s.contains("x")

    def test_add_all_remove_all(self):
        s = fresh_set()
        assert s.add_all(["a", "b", "c", "b"]) == 3
        assert s.elements() == ["a", "b", "c"]
        assert s.remove_all(["b", "z"]) == 1
        assert s.elements() == ["a", "c"]

    def test_membership_after_churn(self):
        import random

        s = fresh_set(seed=2)
        model = set()
        rng = random.Random(3)
        for _ in range(300):
            e = rng.randint(0, 30)
            if rng.random() < 0.5:
                assert s.add(e) == (e not in model)
                model.add(e)
            else:
                assert s.remove(e) == (e in model)
                model.discard(e)
        assert s.elements() == sorted(model)

    def test_survives_replica_crash(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=4))
        s = ReplicatedSet.over(cluster)
        s.add_all(range(10))
        cluster.crash("B")
        assert s.contains(5)
        s.add(99)
        s.remove(5)
        cluster.recover("B")
        assert not s.contains(5)
        assert s.contains(99)
