"""Unit tests for version-number arithmetic and the overflow guard."""

import pytest

from repro.core.versions import (
    LOWEST_VERSION,
    PAPER_48BIT,
    PAPER_RECOMMENDED_BITS,
    UNBOUNDED,
    VersionOverflowError,
    VersionSpace,
    max_version,
)


class TestVersionSpace:
    def test_lowest_is_zero(self):
        assert UNBOUNDED.lowest == 0
        assert LOWEST_VERSION == 0

    def test_unbounded_successor(self):
        assert UNBOUNDED.successor(0) == 1
        huge = 10**30
        assert UNBOUNDED.successor(huge) == huge + 1

    def test_unbounded_has_no_highest(self):
        assert UNBOUNDED.highest is None

    def test_48bit_highest(self):
        assert PAPER_48BIT.highest == (1 << PAPER_RECOMMENDED_BITS) - 1

    def test_bounded_successor_within_range(self):
        space = VersionSpace(bits=8)
        assert space.successor(254) == 255

    def test_bounded_overflow_raises(self):
        space = VersionSpace(bits=8)
        with pytest.raises(VersionOverflowError) as exc_info:
            space.successor(255)
        assert exc_info.value.bits == 8

    def test_overflow_never_wraps_silently(self):
        # The failure the paper warns about is a *wrap*; we must raise,
        # not return a small number.
        space = VersionSpace(bits=4)
        v = 0
        for _ in range(15):
            v = space.successor(v)
        assert v == 15
        with pytest.raises(VersionOverflowError):
            space.successor(v)

    def test_validate_accepts_good_versions(self):
        assert PAPER_48BIT.validate(12345) == 12345
        assert UNBOUNDED.validate(0) == 0

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            UNBOUNDED.validate(-1)

    def test_validate_rejects_overflowed(self):
        space = VersionSpace(bits=8)
        with pytest.raises(VersionOverflowError):
            space.validate(256)


class TestMaxVersion:
    def test_single(self):
        assert max_version(5) == 5

    def test_many(self):
        assert max_version(1, 9, 3) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_version()
