"""Unit tests for failure injection."""

from repro.net.failures import FailureEvent, RandomFailures, ScriptedFailures
from repro.net.network import Network


def three_node_net():
    net = Network()
    net.add_nodes(["a", "b", "c"])
    return net


class TestScriptedFailures:
    def test_crash_and_recover_on_schedule(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [
                FailureEvent(2, "crash", "a"),
                FailureEvent(5, "recover", "a"),
            ],
        )
        ups = []
        for _ in range(7):
            injector.step()
            ups.append(net.node("a").is_up)
        assert ups == [True, True, False, False, False, True, True]

    def test_events_fire_in_order_same_step(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [FailureEvent(0, "crash", "a"), FailureEvent(0, "crash", "b")],
        )
        fired = injector.step()
        assert len(fired) == 2
        assert not net.node("a").is_up and not net.node("b").is_up

    def test_heal_event(self):
        net = three_node_net()
        net.partition(["a"], ["b", "c"])
        injector = ScriptedFailures(net, [FailureEvent(0, "heal")])
        injector.step()
        assert net.reachable("a", "b")

    def test_partition_event(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [FailureEvent(0, "partition", groups=(("a",), ("b", "c")))],
        )
        injector.step()
        assert not net.reachable("a", "b")

    def test_unknown_action_rejected(self):
        net = three_node_net()
        injector = ScriptedFailures(net, [FailureEvent(0, "explode", "a")])
        try:
            injector.step()
            raise AssertionError("expected ValueError")
        except ValueError:
            pass


class TestRandomFailures:
    def test_steady_state_formula(self):
        net = three_node_net()
        injector = RandomFailures(net, crash_prob=0.1, recover_prob=0.4)
        assert abs(injector.steady_state_availability() - 0.8) < 1e-12

    def test_zero_probabilities_are_stable(self):
        net = three_node_net()
        injector = RandomFailures(net, crash_prob=0.0, recover_prob=0.0)
        for _ in range(100):
            injector.step()
        assert all(n.is_up for n in net.nodes())
        assert injector.steady_state_availability() == 1.0

    def test_empirical_availability_near_steady_state(self):
        import random

        net = three_node_net()
        injector = RandomFailures(
            net, crash_prob=0.05, recover_prob=0.20, rng=random.Random(7)
        )
        up_samples = 0
        total = 0
        for _ in range(20_000):
            injector.step()
            for node in net.nodes():
                up_samples += node.is_up
                total += 1
        empirical = up_samples / total
        assert abs(empirical - injector.steady_state_availability()) < 0.03

    def test_min_up_floor_respected(self):
        import random

        net = three_node_net()
        injector = RandomFailures(
            net, crash_prob=0.9, recover_prob=0.0, rng=random.Random(1), min_up=2
        )
        for _ in range(200):
            injector.step()
        assert sum(n.is_up for n in net.nodes()) >= 2

    def test_event_callback(self):
        import random

        net = three_node_net()
        events = []
        injector = RandomFailures(
            net,
            crash_prob=0.5,
            recover_prob=0.5,
            rng=random.Random(3),
            on_event=lambda kind, node: events.append((kind, node)),
        )
        for _ in range(50):
            injector.step()
        assert events  # something happened
        assert all(kind in ("crash", "recover") for kind, _ in events)
