"""Unit tests for failure injection."""

import random

import pytest

from repro.net.failures import (
    DROP_REPLY,
    DROP_REQUEST,
    OK,
    FailureEvent,
    LossEvent,
    LossyLinks,
    RandomFailures,
    ScriptedFailures,
    ScriptedLoss,
)
from repro.net.network import Network


def three_node_net():
    net = Network()
    net.add_nodes(["a", "b", "c"])
    return net


class TestScriptedFailures:
    def test_crash_and_recover_on_schedule(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [
                FailureEvent(2, "crash", "a"),
                FailureEvent(5, "recover", "a"),
            ],
        )
        ups = []
        for _ in range(7):
            injector.step()
            ups.append(net.node("a").is_up)
        assert ups == [True, True, False, False, False, True, True]

    def test_events_fire_in_order_same_step(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [FailureEvent(0, "crash", "a"), FailureEvent(0, "crash", "b")],
        )
        fired = injector.step()
        assert len(fired) == 2
        assert not net.node("a").is_up and not net.node("b").is_up

    def test_heal_event(self):
        net = three_node_net()
        net.partition(["a"], ["b", "c"])
        injector = ScriptedFailures(net, [FailureEvent(0, "heal")])
        injector.step()
        assert net.reachable("a", "b")

    def test_partition_event(self):
        net = three_node_net()
        injector = ScriptedFailures(
            net,
            [FailureEvent(0, "partition", groups=(("a",), ("b", "c")))],
        )
        injector.step()
        assert not net.reachable("a", "b")

    def test_unknown_action_rejected(self):
        net = three_node_net()
        injector = ScriptedFailures(net, [FailureEvent(0, "explode", "a")])
        try:
            injector.step()
            raise AssertionError("expected ValueError")
        except ValueError:
            pass

    def test_crash_without_node_id_rejected(self):
        net = three_node_net()
        injector = ScriptedFailures(net, [FailureEvent(0, "crash")])
        with pytest.raises(ValueError, match="names no node_id"):
            injector.step()

    def test_recover_without_node_id_rejected(self):
        net = three_node_net()
        injector = ScriptedFailures(net, [FailureEvent(1, "recover")])
        injector.step()  # step 0: nothing due yet
        with pytest.raises(ValueError, match="names no node_id"):
            injector.step()


class TestRandomFailures:
    def test_steady_state_formula(self):
        net = three_node_net()
        injector = RandomFailures(net, crash_prob=0.1, recover_prob=0.4)
        assert abs(injector.steady_state_availability() - 0.8) < 1e-12

    def test_zero_probabilities_are_stable(self):
        net = three_node_net()
        injector = RandomFailures(net, crash_prob=0.0, recover_prob=0.0)
        for _ in range(100):
            injector.step()
        assert all(n.is_up for n in net.nodes())
        assert injector.steady_state_availability() == 1.0

    def test_empirical_availability_near_steady_state(self):
        import random

        net = three_node_net()
        injector = RandomFailures(
            net, crash_prob=0.05, recover_prob=0.20, rng=random.Random(7)
        )
        up_samples = 0
        total = 0
        for _ in range(20_000):
            injector.step()
            for node in net.nodes():
                up_samples += node.is_up
                total += 1
        empirical = up_samples / total
        assert abs(empirical - injector.steady_state_availability()) < 0.03

    def test_min_up_floor_respected(self):
        import random

        net = three_node_net()
        injector = RandomFailures(
            net, crash_prob=0.9, recover_prob=0.0, rng=random.Random(1), min_up=2
        )
        for _ in range(200):
            injector.step()
        assert sum(n.is_up for n in net.nodes()) >= 2

    def test_event_callback(self):
        import random

        net = three_node_net()
        events = []
        injector = RandomFailures(
            net,
            crash_prob=0.5,
            recover_prob=0.5,
            rng=random.Random(3),
            on_event=lambda kind, node: events.append((kind, node)),
        )
        for _ in range(50):
            injector.step()
        assert events  # something happened
        assert all(kind in ("crash", "recover") for kind, _ in events)

    def test_min_up_holds_against_scripted_crashes(self):
        # Another injector (or test) crashes a node directly; the random
        # process must count it against min_up rather than crash a second
        # node based on a stale view.
        import random

        net = three_node_net()
        injector = RandomFailures(
            net, crash_prob=1.0, recover_prob=0.0, rng=random.Random(5), min_up=2
        )
        net.node("a").crash()  # scripted, outside the injector's control
        for _ in range(50):
            injector.step()
            assert sum(n.is_up for n in net.nodes()) >= 2


class TestLossyLinks:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            LossyLinks(request_loss=1.5)
        with pytest.raises(ValueError):
            LossyLinks(reply_loss=-0.1)
        with pytest.raises(ValueError):
            LossyLinks(flaky_prob=2.0)

    def test_zero_loss_never_drops(self):
        faults = LossyLinks()
        assert all(
            faults.disposition("c", "s", "m") == OK for _ in range(100)
        )
        assert faults.delay("c", "s") == 0.0

    def test_total_loss_drops_every_request(self):
        faults = LossyLinks(request_loss=1.0)
        assert faults.disposition("c", "s", "m") == DROP_REQUEST

    def test_reply_loss_only(self):
        faults = LossyLinks(reply_loss=1.0)
        assert faults.disposition("c", "s", "m") == DROP_REPLY

    def test_seeded_stream_is_reproducible(self):
        a = LossyLinks(request_loss=0.3, reply_loss=0.3, rng=random.Random(9))
        b = LossyLinks(request_loss=0.3, reply_loss=0.3, rng=random.Random(9))
        seq_a = [a.disposition("c", "s", "m") for _ in range(200)]
        seq_b = [b.disposition("c", "s", "m") for _ in range(200)]
        assert seq_a == seq_b
        assert DROP_REQUEST in seq_a and DROP_REPLY in seq_a

    def test_per_link_override(self):
        faults = LossyLinks(
            request_loss=0.0,
            per_link={("c", "bad"): (1.0, 0.0)},
        )
        assert faults.disposition("c", "good", "m") == OK
        assert faults.disposition("c", "bad", "m") == DROP_REQUEST

    def test_flaky_delay(self):
        faults = LossyLinks(flaky_prob=1.0, flaky_extra=7.5)
        assert faults.delay("c", "s") == 7.5


class TestScriptedLoss:
    def test_drops_nth_matching_call(self):
        faults = ScriptedLoss(
            [LossEvent("request", dst="s", method="svc.put", nth=1)]
        )
        assert faults.disposition("c", "s", "svc.put") == OK  # 0th survives
        assert faults.disposition("c", "s", "svc.put") == DROP_REQUEST
        assert faults.disposition("c", "s", "svc.put") == OK
        assert faults.exhausted
        assert [e.phase for e in faults.fired] == ["request"]

    def test_filters_by_dst_and_method(self):
        faults = ScriptedLoss([LossEvent("reply", dst="s2")])
        assert faults.disposition("c", "s1", "svc.put") == OK
        assert faults.disposition("c", "s2", "other.get") == DROP_REPLY

    def test_wildcard_event_matches_first_call(self):
        faults = ScriptedLoss([LossEvent("reply")])
        assert faults.disposition("c", "anything", "any.method") == DROP_REPLY
        assert faults.exhausted

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            ScriptedLoss([LossEvent("sideways")])

    def test_no_delay(self):
        assert ScriptedLoss([]).delay("c", "s") == 0.0
