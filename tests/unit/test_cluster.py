"""Unit tests for the DirectoryCluster facade."""

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.config import SuiteConfig
from repro.core.quorum import StickyQuorumPolicy
from repro.storage.btree import BTreeStore
from repro.storage.sorted_store import SortedStore


class TestCreate:
    def test_from_xyz_spec(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        assert set(cluster.representatives) == {"A", "B", "C"}
        assert len(cluster.network.nodes()) == 3

    def test_from_full_config(self):
        config = SuiteConfig(
            votes={"X": 2, "Y": 1, "Z": 1}, read_quorum=2, write_quorum=3
        )
        cluster = DirectoryCluster.create(ClusterSpec(config=config, seed=1))
        assert set(cluster.representatives) == {"X", "Y", "Z"}

    def test_btree_store_selected(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", store="btree", seed=1))
        assert isinstance(cluster.representative("A").store, BTreeStore)

    def test_sorted_store_default(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1))
        assert isinstance(cluster.representative("A").store, SortedStore)

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError):
            DirectoryCluster.create(ClusterSpec(config="3-2-2", store="rocksdb"))

    def test_custom_quorum_policy_installed(self):
        policy = StickyQuorumPolicy()
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", quorum_policy=policy, seed=1))
        assert cluster.suite.quorum_policy is policy

    def test_colocated_reps_share_node(self):
        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1, node_for_rep=lambda rep: "shared"))
        assert len(cluster.network.nodes()) == 1
        # Crashing the one node takes every representative down.
        cluster.network.node("shared").crash()
        from repro.core.errors import QuorumUnavailableError

        with pytest.raises(QuorumUnavailableError):
            cluster.suite.lookup("x")


class TestConveniences:
    def test_crash_and_recover_by_rep_name(self, cluster322):
        cluster322.suite.insert("k", "v")
        cluster322.crash("A")
        assert not cluster322.network.node("node-A").is_up
        cluster322.recover("A")
        assert cluster322.network.node("node-A").is_up
        assert cluster322.suite.lookup("k") == (True, "v")

    def test_check_invariants_runs_all_reps(self, cluster322):
        cluster322.suite.insert("k", "v")
        cluster322.check_invariants()

    def test_end_to_end_roundtrip(self, cluster322):
        directory = cluster322.suite
        directory.insert("alice", 1)
        directory.insert("bob", 2)
        directory.update("alice", 3)
        directory.delete("bob")
        assert directory.lookup("alice") == (True, 3)
        assert directory.lookup("bob") == (False, None)
