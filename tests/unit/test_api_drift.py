"""Docs drift: every import the user guides show must actually work.

docs/API.md, docs/SERVICE.md, and docs/OBSERVABILITY.md are the
contracts users copy-paste from.  This test extracts every ``import
repro...`` / ``from repro... import ...`` statement out of their fenced
python blocks and executes them, so renaming or un-exporting a symbol
fails CI instead of silently breaking the docs.  It also pins
``repro.__all__`` to reality in both directions.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro

_DOCS = Path(__file__).resolve().parents[2] / "docs"
GUIDES = [_DOCS / "API.md", _DOCS / "SERVICE.md", _DOCS / "OBSERVABILITY.md"]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# A repro import statement, including parenthesized multiline forms.
_IMPORT = re.compile(
    r"^(?:from\s+repro[\w.]*\s+import\s+(?:\([^)]*\)|[^\n(]+)"
    r"|import\s+repro[\w.]*)",
    re.MULTILINE | re.DOTALL,
)


def _doc_import_statements() -> list[tuple[str, str]]:
    statements: list[tuple[str, str]] = []
    for guide in GUIDES:
        for block in _FENCE.findall(guide.read_text()):
            # Strip comments first: they may contain parentheses that
            # would derail the parenthesized-import match.
            stripped = "\n".join(
                line.split("#")[0].rstrip() for line in block.splitlines()
            )
            statements.extend(
                (guide.name, m.group(0)) for m in _IMPORT.finditer(stripped)
            )
    return statements


STATEMENTS = _doc_import_statements()


@pytest.mark.parametrize("guide", GUIDES, ids=[g.name for g in GUIDES])
def test_guide_has_import_examples(guide):
    # The guides lean on imports throughout; an empty extraction means
    # the regex (or the doc) broke, not that there is nothing to check.
    count = sum(1 for name, _ in STATEMENTS if name == guide.name)
    assert count >= (10 if guide.name == "API.md" else 2)


@pytest.mark.parametrize(
    "guide,statement",
    STATEMENTS,
    ids=[f"{g}: {s.replace(chr(10), ' ')[:60]}" for g, s in STATEMENTS],
)
def test_documented_import_works(guide, statement):
    exec(statement, {})


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_key_surface_is_exported():
    for name in (
        "Directory",
        "ClusterSpec",
        "ShardedDirectory",
        "ShardMap",
        "RangeShardMap",
        "HashShardMap",
        "ShardAuditor",
        "WaveOutcome",
        "Transport",
        "SimTransport",
        "resolve_transport",
        "register_directory",
        "directory_factories",
    ):
        assert name in repro.__all__, name
