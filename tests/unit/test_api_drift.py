"""Docs drift: every import the API guide shows must actually work.

docs/API.md is the contract users copy-paste from.  This test extracts
every ``import repro...`` / ``from repro... import ...`` statement out of
its fenced python blocks and executes them, so renaming or un-exporting
a symbol fails CI instead of silently breaking the docs.  It also pins
``repro.__all__`` to reality in both directions.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro

API_MD = Path(__file__).resolve().parents[2] / "docs" / "API.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# A repro import statement, including parenthesized multiline forms.
_IMPORT = re.compile(
    r"^(?:from\s+repro[\w.]*\s+import\s+(?:\([^)]*\)|[^\n(]+)"
    r"|import\s+repro[\w.]*)",
    re.MULTILINE | re.DOTALL,
)


def _doc_import_statements() -> list[str]:
    text = API_MD.read_text()
    statements: list[str] = []
    for block in _FENCE.findall(text):
        # Strip comments first: they may contain parentheses that would
        # derail the parenthesized-import match.
        stripped = "\n".join(
            line.split("#")[0].rstrip() for line in block.splitlines()
        )
        statements.extend(m.group(0) for m in _IMPORT.finditer(stripped))
    return statements


STATEMENTS = _doc_import_statements()


def test_api_md_has_import_examples():
    # The guide leans on imports throughout; an empty extraction means
    # the regex (or the doc) broke, not that there is nothing to check.
    assert len(STATEMENTS) >= 10


@pytest.mark.parametrize(
    "statement", STATEMENTS, ids=[s.replace("\n", " ")[:60] for s in STATEMENTS]
)
def test_documented_import_works(statement):
    exec(statement, {})


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_key_surface_is_exported():
    for name in (
        "Directory",
        "ClusterSpec",
        "ShardedDirectory",
        "ShardMap",
        "RangeShardMap",
        "HashShardMap",
        "ShardAuditor",
        "WaveOutcome",
        "register_directory",
        "directory_factories",
    ):
        assert name in repro.__all__, name
