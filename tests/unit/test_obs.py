"""Unit tests for the observability subsystem (spans, metrics, export)."""

import threading

import pytest

from repro.core.errors import NodeDownError
from repro.core.stats import RunningStat
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    Span,
    dump_spans,
    load_spans,
    spans_to_trace,
)
from repro.obs.export import (
    save_spans,
    load_spans_file,
    total_messages,
    total_rpc_rounds,
)
from repro.obs.spans import NULL_TRACER, _NULL_SPAN


class TestRecordingTracer:
    def test_nesting_builds_a_tree(self):
        tracer = RecordingTracer()
        with tracer.span("op:insert", key="a"):
            with tracer.span("quorum:write"):
                pass
            with tracer.span("rpc:dir:A.rep_insert"):
                with tracer.span("rep:A.rep_insert"):
                    pass
        roots = tracer.finished_roots()
        assert [r.name for r in roots] == ["op:insert"]
        root = roots[0]
        assert [c.name for c in root.children] == [
            "quorum:write",
            "rpc:dir:A.rep_insert",
        ]
        rpc = root.children[1]
        assert [c.name for c in rpc.children] == ["rep:A.rep_insert"]
        assert rpc.parent_id == root.span_id
        assert rpc.children[0].parent_id == rpc.span_id

    def test_clock_binding_and_duration(self):
        clock = iter([10.0, 25.0])
        tracer = RecordingTracer(now=lambda: next(clock))
        with tracer.span("op:lookup"):
            pass
        (root,) = tracer.finished_roots()
        assert root.start == 10.0 and root.end == 25.0
        assert root.duration == 15.0

    def test_attrs_from_kwargs_and_set(self):
        tracer = RecordingTracer()
        with tracer.span("op:insert", key="k", client="c") as span:
            span.set("messages", 2)
        (root,) = tracer.finished_roots()
        assert root.attrs == {"key": "k", "client": "c", "messages": 2}

    def test_exception_captured_as_status(self):
        tracer = RecordingTracer()
        with pytest.raises(NodeDownError):
            with tracer.span("rpc:dir:A.rep_lookup"):
                raise NodeDownError("node-A")
        (root,) = tracer.finished_roots()
        assert root.status == "NodeDownError"

    def test_clean_exit_status_ok(self):
        tracer = RecordingTracer()
        with tracer.span("op:lookup"):
            pass
        assert tracer.finished_roots()[0].status == "ok"

    def test_reset_drops_roots(self):
        tracer = RecordingTracer()
        with tracer.span("op:lookup"):
            pass
        tracer.reset()
        assert tracer.finished_roots() == []

    def test_current_span(self):
        tracer = RecordingTracer()
        assert tracer.current_span() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is None

    def test_threads_build_independent_trees(self):
        tracer = RecordingTracer()
        n_threads, per_thread = 4, 50

        def work(label):
            for i in range(per_thread):
                with tracer.span(f"op:{label}", i=i):
                    with tracer.span("rpc:x"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.finished_roots()
        assert len(roots) == n_threads * per_thread
        # every root kept exactly its own child — no cross-thread mixing
        assert all(len(r.children) == 1 for r in roots)
        ids = [s.span_id for r in roots for s in r.walk()]
        assert len(ids) == len(set(ids))

    def test_aggregation_helpers(self):
        tracer = RecordingTracer()
        with tracer.span("op:insert"):
            for _ in range(3):
                with tracer.span("rpc:dir:A.m") as rpc:
                    rpc.set("messages", 2)
        (root,) = tracer.finished_roots()
        assert root.rpc_rounds() == 3
        assert root.message_count() == 6
        assert total_messages([root]) == 6
        assert total_rpc_rounds([root]) == 3


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("op:insert", key="a") as span:
            span.set("messages", 2)
        assert tracer.finished_roots() == []

    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b") is _NULL_SPAN

    def test_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("boom")


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("suite.ops")
        a.inc()
        a.inc(4)
        assert reg.counter("suite.ops") is a
        assert reg.snapshot()["suite.ops"] == 5

    def test_histogram_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("quorum.members")
        for x in (2, 2, 3):
            h.observe(x)
        row = reg.snapshot()["quorum.members"]
        assert row["n"] == 3
        assert row["avg"] == pytest.approx(7 / 3)
        assert row["max"] == 3

    def test_histogram_adopts_existing_runningstat(self):
        stat = RunningStat()
        stat.add(10)
        reg = MetricsRegistry()
        h = reg.histogram("legacy", stat=stat)
        stat.add(20)  # legacy writer keeps writing to its own object
        assert h.snapshot()["n"] == 2
        assert reg.snapshot()["legacy"]["avg"] == 15

    def test_gauge_and_provider_read_live(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("g", lambda: box["v"])
        reg.provider("p", lambda: {"x": box["v"] * 10})
        box["v"] = 7
        snap = reg.snapshot()
        assert snap["g"] == 7
        assert snap["p"] == {"x": 70}

    def test_provider_reregistration_last_wins(self):
        reg = MetricsRegistry()
        reg.provider("p", lambda: {"gen": 1})
        reg.provider("p", lambda: {"gen": 2})
        assert reg.snapshot()["p"] == {"gen": 2}

    def test_cross_kind_name_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("net.traffic")
        with pytest.raises(ValueError):
            reg.gauge("net.traffic", lambda: 1)
        with pytest.raises(ValueError):
            reg.histogram("net.traffic")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a", lambda: 0)
        reg.provider("c", dict)
        assert reg.names() == ["a", "b", "c"]

    def test_reset_zeroes_counters_and_histograms_only(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.histogram("h").observe(4)
        reg.gauge("g", lambda: 42)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0
        assert snap["h"]["n"] == 0
        assert snap["g"] == 42

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestExport:
    def _sample_spans(self):
        tracer = RecordingTracer()
        with tracer.span("op:insert", key="a", value=1, client="client"):
            with tracer.span("rpc:dir:A.rep_insert") as rpc:
                rpc.set("messages", 2)
        with tracer.span("op:delete", key="a", client="client"):
            pass
        return tracer.finished_roots()

    def test_dump_load_round_trip(self):
        spans = self._sample_spans()
        text = dump_spans(spans, metadata={"seed": 3})
        loaded = load_spans(text)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_dump_is_json_lines_with_header(self):
        import json

        text = dump_spans(self._sample_spans())
        lines = text.strip().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == 1
        assert header["count"] == 2 == len(lines) - 1

    def test_file_round_trip(self, tmp_path):
        spans = self._sample_spans()
        path = tmp_path / "spans.jsonl"
        save_spans(spans, path)
        loaded = load_spans_file(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_load_rejects_bad_format_and_count(self):
        with pytest.raises(ValueError):
            load_spans("")
        with pytest.raises(ValueError):
            load_spans('{"format": 99, "count": 0}\n')
        good = dump_spans(self._sample_spans())
        header, rest = good.split("\n", 1)
        tampered = header.replace('"count": 2', '"count": 5') + "\n" + rest
        with pytest.raises(ValueError):
            load_spans(tampered)

    def test_spans_to_trace_filters_failures(self):
        tracer = RecordingTracer()
        with tracer.span("op:insert", key="a", value=1, client="c"):
            pass
        with pytest.raises(NodeDownError):
            with tracer.span("op:delete", key="a", client="c"):
                raise NodeDownError("node-A")
        with tracer.span("not-an-op"):
            pass
        spans = tracer.finished_roots()
        trace = spans_to_trace(spans)
        assert [(op.kind, op.key) for op in trace] == [("insert", "a")]
        trace_all = spans_to_trace(spans, include_failed=True)
        assert [op.kind for op in trace_all] == ["insert", "delete"]

    def test_span_from_dict_defaults(self):
        span = Span.from_dict({"name": "x", "span_id": 1})
        assert span.status == "ok"
        assert span.children == [] and span.attrs == {}


class TestHistogramPercentiles:
    def test_percentile_delegates_to_stat(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", keep_samples=True)
        for x in range(1, 101):
            h.observe(float(x))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(99) == pytest.approx(99.01)

    def test_snapshot_carries_percentiles_with_retention(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", reservoir=256)
        for x in range(1, 101):
            h.observe(float(x))
        row = reg.snapshot()["lat"]
        assert set(row) >= {"p50", "p90", "p99"}
        assert row["p50"] == pytest.approx(50.5)

    def test_snapshot_omits_percentiles_without_retention(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")  # no keep_samples, no reservoir
        h.observe(1.0)
        row = reg.snapshot()["lat"]
        assert "p50" not in row and "p99" not in row
        assert row["n"] == 1

    def test_reset_preserves_reservoir_configuration(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", reservoir=64)
        h.observe(3.0)
        reg.reset()
        h.observe(5.0)
        assert reg.snapshot()["lat"]["p50"] == 5.0
