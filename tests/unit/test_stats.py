"""Unit tests for the statistics collectors (validated against numpy)."""

import numpy as np
import pytest

from repro.core.stats import DeleteOverheadStats, RunningStat, SuiteOpCounts


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.avg == 0.0 and s.std_dev == 0.0 and s.n == 0

    def test_single_sample(self):
        s = RunningStat()
        s.add(4.0)
        assert s.avg == 4.0 and s.max == 4.0 and s.std_dev == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(5, 2, size=500)
        s = RunningStat()
        for x in data:
            s.add(float(x))
        assert s.avg == pytest.approx(np.mean(data))
        assert s.std_dev == pytest.approx(np.std(data))  # population std
        assert s.max == pytest.approx(np.max(data))

    def test_max_tracks_negative_values(self):
        s = RunningStat()
        for x in (-5.0, -2.0, -9.0):
            s.add(x)
        assert s.max == -2.0

    def test_keep_samples(self):
        s = RunningStat(keep_samples=True)
        s.add(1.0)
        s.add(2.0)
        assert s.samples == [1.0, 2.0]

    def test_samples_not_kept_by_default(self):
        s = RunningStat()
        s.add(1.0)
        assert s.samples == []

    def test_merge_matches_pooled(self):
        rng = np.random.default_rng(2)
        a_data = rng.normal(0, 1, 200)
        b_data = rng.normal(3, 2, 300)
        a, b = RunningStat(), RunningStat()
        for x in a_data:
            a.add(float(x))
        for x in b_data:
            b.add(float(x))
        a.merge(b)
        pooled = np.concatenate([a_data, b_data])
        assert a.n == 500
        assert a.avg == pytest.approx(np.mean(pooled))
        assert a.std_dev == pytest.approx(np.std(pooled))
        assert a.max == pytest.approx(np.max(pooled))

    def test_merge_into_empty(self):
        a, b = RunningStat(), RunningStat()
        b.add(2.0)
        a.merge(b)
        assert a.n == 1 and a.avg == 2.0

    def test_merge_empty_is_noop(self):
        a, b = RunningStat(), RunningStat()
        a.add(1.0)
        a.merge(b)
        assert a.n == 1

    def test_as_row(self):
        s = RunningStat()
        s.add(2.0)
        s.add(4.0)
        row = s.as_row()
        assert row["avg"] == 3.0 and row["max"] == 4.0


class TestDeleteOverheadStats:
    def test_record_delete_distributes_samples(self):
        stats = DeleteOverheadStats()
        stats.record_delete([1, 2], insertions=1, ghost_deletions=1)
        stats.record_delete([0, 1], insertions=0, ghost_deletions=0)
        # Entries-coalesced is per representative: 4 samples.
        assert stats.entries_coalesced.n == 4
        assert stats.entries_coalesced.avg == 1.0
        # The other two are per delete: 2 samples each.
        assert stats.insertions_while_coalescing.n == 2
        assert stats.deletions_while_coalescing.avg == 0.5

    def test_as_table_shape(self):
        stats = DeleteOverheadStats()
        stats.record_delete([1], 0, 0)
        table = stats.as_table()
        assert set(table) == {
            "entries_in_ranges_coalesced",
            "deletions_while_coalescing",
            "insertions_while_coalescing",
        }
        for row in table.values():
            assert set(row) == {"avg", "max", "std_dev"}

    def test_merge(self):
        a, b = DeleteOverheadStats(), DeleteOverheadStats()
        a.record_delete([1], 1, 0)
        b.record_delete([3], 0, 2)
        a.merge(b)
        assert a.entries_coalesced.n == 2
        assert a.deletions_while_coalescing.avg == 1.0

    def test_keep_samples_flag_propagates(self):
        stats = DeleteOverheadStats(keep_samples=True)
        stats.record_delete([2], 1, 1)
        assert stats.entries_coalesced.samples == [2]


class TestSuiteOpCounts:
    def test_total(self):
        counts = SuiteOpCounts(lookups=1, inserts=2, updates=3, deletes=4)
        assert counts.total == 10


class TestPercentile:
    def test_exact_with_keep_samples(self):
        s = RunningStat(keep_samples=True)
        data = [float(x) for x in range(1, 101)]
        for x in data:
            s.add(x)
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0
        assert s.percentile(50) == pytest.approx(np.percentile(data, 50))
        assert s.percentile(90) == pytest.approx(np.percentile(data, 90))
        assert s.percentile(99) == pytest.approx(np.percentile(data, 99))

    def test_interpolates_between_ranks(self):
        s = RunningStat(keep_samples=True)
        for x in (0.0, 10.0):
            s.add(x)
        assert s.percentile(50) == 5.0

    def test_out_of_range_q_rejected(self):
        s = RunningStat(keep_samples=True)
        s.add(1.0)
        with pytest.raises(ValueError):
            s.percentile(101)
        with pytest.raises(ValueError):
            s.percentile(-1)

    def test_empty_returns_zero(self):
        assert RunningStat(keep_samples=True).percentile(50) == 0.0

    def test_no_retention_raises_once_samples_recorded(self):
        s = RunningStat()
        s.add(1.0)
        with pytest.raises(ValueError):
            s.percentile(50)

    def test_reservoir_keeps_at_most_k(self):
        s = RunningStat(reservoir=32)
        for x in range(1000):
            s.add(float(x))
        assert len(s.retained_samples) == 32
        assert s.n == 1000
        # Reservoir samples are a subset of what was added.
        assert all(0.0 <= x < 1000.0 for x in s.retained_samples)

    def test_reservoir_percentile_is_close_on_uniform_data(self):
        s = RunningStat(reservoir=512)
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 100, size=20_000)
        for x in data:
            s.add(float(x))
        # A 512-sample reservoir estimates the median of uniform data
        # within a few percent.
        assert s.percentile(50) == pytest.approx(50.0, abs=8.0)

    def test_reservoir_is_deterministic(self):
        def run():
            s = RunningStat(reservoir=16)
            for x in range(500):
                s.add(float(x))
            return s.retained_samples

        assert run() == run()

    def test_small_stream_is_exact(self):
        s = RunningStat(reservoir=100)
        for x in (3.0, 1.0, 2.0):
            s.add(x)
        assert s.percentile(50) == 2.0
        assert s.percentile(100) == 3.0

    def test_merge_carries_reservoir_samples(self):
        a = RunningStat(reservoir=10)
        b = RunningStat(reservoir=10)
        for x in (1.0, 2.0):
            a.add(x)
        for x in (3.0, 4.0):
            b.add(x)
        a.merge(b)
        assert a.n == 4
        assert set(a.retained_samples) == {1.0, 2.0, 3.0, 4.0}
