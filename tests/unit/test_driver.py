"""Unit tests for the serial simulation driver."""

import pytest

from repro.cluster import ClusterSpec
from repro.net.failures import RandomFailures
from repro.sim.driver import (
    SimulationSpec,
    run_figure14_grid,
    run_figure15_sizes,
    run_simulation,
)
from repro.sim.workload import OpMix


def small_spec(**overrides):
    defaults = dict(config="3-2-2", directory_size=40, operations=400, seed=2)
    defaults.update(overrides)
    return SimulationSpec(**defaults)


class TestRunSimulation:
    def test_basic_run_shape(self):
        result = run_simulation(small_spec())
        assert result.op_counts.total == 400
        assert result.failed_operations == 0
        assert result.delete_stats.entries_coalesced.n > 0
        assert set(result.rep_entry_counts) == {"A", "B", "C"}
        assert result.elapsed_seconds > 0

    def test_measurement_starts_after_load(self):
        result = run_simulation(small_spec(operations=100))
        # Only measured ops counted; the 40 loading inserts are excluded.
        assert result.op_counts.total == 100
        # Loading traffic was reset away: rounds correspond to ~100 ops.
        assert result.traffic["rpc_rounds"] < 100 * 40

    def test_deterministic_given_seed(self):
        a = run_simulation(small_spec())
        b = run_simulation(small_spec())
        assert a.stats_table() == b.stats_table()
        assert a.final_size == b.final_size
        assert a.traffic["rpc_rounds"] == b.traffic["rpc_rounds"]

    def test_different_seeds_differ(self):
        a = run_simulation(small_spec(seed=3))
        b = run_simulation(small_spec(seed=4))
        assert a.traffic["rpc_rounds"] != b.traffic["rpc_rounds"]

    def test_custom_mix_respected(self):
        result = run_simulation(
            small_spec(mix=OpMix(insert=1, update=0, delete=0, lookup=0))
        )
        assert result.op_counts.inserts == 400
        assert result.op_counts.deletes == 0
        assert result.final_size == 40 + 400

    def test_warmup_operations_not_measured(self):
        warm = run_simulation(small_spec(warmup_operations=200))
        assert warm.op_counts.total == 400

    def test_btree_store_runs(self):
        result = run_simulation(small_spec(store="btree"))
        assert result.op_counts.total == 400

    def test_failures_counted_not_raised(self):
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=5))
        injector = RandomFailures(
            cluster.network, crash_prob=0.05, recover_prob=0.1
        )
        result = run_simulation(
            small_spec(seed=5), cluster=cluster, failure_stepper=injector
        )
        assert result.failed_operations > 0
        assert (
            result.op_counts.total == 400
        )  # every op attempted; some failed

    def test_workload_model_corrected_on_failure(self):
        # After a run with failures, recover everyone; the final
        # authoritative size must match the workload's belief.
        from repro.cluster import DirectoryCluster

        cluster = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=6))
        injector = RandomFailures(
            cluster.network, crash_prob=0.03, recover_prob=0.2
        )
        result = run_simulation(
            small_spec(seed=6), cluster=cluster, failure_stepper=injector
        )
        for node in cluster.network.nodes():
            node.recover()
        assert len(cluster.suite.authoritative_state()) == result.final_size


class TestGrids:
    def test_figure14_grid_runs_each_config(self):
        results = run_figure14_grid(
            ["1-1-1", "3-2-2"], directory_size=20, operations=150, seed=1
        )
        assert set(results) == {"1-1-1", "3-2-2"}
        # Write-all 1-1-1 can have no ghosts at all.
        assert (
            results["1-1-1"].stats_table()["deletions_while_coalescing"]["avg"]
            == 0.0
        )

    def test_figure15_sizes(self):
        results = run_figure15_sizes(
            [20, 40], config="3-2-2", operations=150, seed=1
        )
        assert set(results) == {20, 40}
        for result in results.values():
            assert result.op_counts.total == 150
