"""Unit tests for the closed-loop lock-contention simulator."""

import pytest

from repro.sim.concurrency import (
    ConcurrencySpec,
    LockContentionSimulator,
    compare_granularities,
)


def run(granularity, **overrides):
    spec = ConcurrencySpec(granularity=granularity, **overrides)
    return LockContentionSimulator(spec).run()


class TestBasics:
    def test_all_transactions_commit(self):
        for granularity in ("range", "static", "whole"):
            result = run(
                granularity, n_transactions=100, concurrency_level=4, seed=1
            )
            assert result.committed == 100

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError):
            LockContentionSimulator(ConcurrencySpec(granularity="nonsense"))

    def test_bad_concurrency_level_rejected(self):
        with pytest.raises(ValueError):
            LockContentionSimulator(ConcurrencySpec(concurrency_level=0))

    def test_deterministic_given_seed(self):
        a = run("range", n_transactions=80, concurrency_level=6, seed=3)
        b = run("range", n_transactions=80, concurrency_level=6, seed=3)
        assert a.makespan == b.makespan
        assert a.total_latency == b.total_latency
        assert a.aborted_restarts == b.aborted_restarts

    def test_metrics_sane(self):
        result = run("range", n_transactions=50, concurrency_level=4, seed=4)
        assert result.makespan > 0
        assert result.throughput > 0
        assert result.mean_latency > 0

    def test_lock_table_empty_at_end(self):
        spec = ConcurrencySpec(
            granularity="static", n_transactions=60, concurrency_level=6, seed=5
        )
        sim = LockContentionSimulator(spec)
        sim.run()
        assert sim.table.is_idle()


class TestGranularityOrdering:
    """The paper's claim: finer version/lock granularity → more concurrency."""

    def _results(self, seed=6):
        return compare_granularities(
            ConcurrencySpec(
                n_transactions=300, concurrency_level=8, seed=seed
            ),
            static_partitions=4,
        )

    def test_range_beats_whole_throughput(self):
        results = self._results()
        assert (
            results["range"].throughput > results["whole"].throughput * 2
        )

    def test_range_latency_best(self):
        results = self._results()
        assert results["range"].mean_latency < results["static"].mean_latency
        assert results["range"].mean_latency < results["whole"].mean_latency

    def test_whole_granularity_deadlock_storms(self):
        # Read-point then write-whole upgrades deadlock under contention;
        # fine-grained locks on the same workload essentially never do.
        results = self._results()
        assert results["whole"].aborted_restarts > 100
        assert results["range"].aborted_restarts < 20

    def test_more_partitions_help_static(self):
        coarse = run(
            "static", static_partitions=2, n_transactions=200,
            concurrency_level=8, seed=7,
        )
        fine = run(
            "static", static_partitions=64, n_transactions=200,
            concurrency_level=8, seed=7,
        )
        assert fine.throughput > coarse.throughput


class TestSerialExecution:
    def test_level_one_equalizes_granularities(self):
        # One client at a time: no contention, so the granularities are
        # literally identical (same seed → same plans → same timings).
        results = compare_granularities(
            ConcurrencySpec(
                n_transactions=100, concurrency_level=1, seed=9
            )
        )
        latencies = {round(r.mean_latency, 9) for r in results.values()}
        assert len(latencies) == 1
        assert all(r.aborted_restarts == 0 for r in results.values())
