"""Unit tests for entry/reply record types."""

from repro.core.entries import Entry, LookupReply, NeighborReply, RealNeighbor, SuiteLookupReply
from repro.core.keys import LOW, wrap


class TestEntry:
    def test_with_version(self):
        e = Entry(wrap("k"), 3, "v")
        e2 = e.with_version(7)
        assert e2.version == 7 and e2.key == e.key and e2.value == "v"
        assert e.version == 3  # original untouched

    def test_with_value(self):
        e = Entry(wrap("k"), 3, "v")
        e2 = e.with_value("w")
        assert e2.value == "w" and e2.version == 3

    def test_equality(self):
        assert Entry(wrap("k"), 1, "v") == Entry(wrap("k"), 1, "v")
        assert Entry(wrap("k"), 1, "v") != Entry(wrap("k"), 2, "v")

    def test_sentinel_entry(self):
        e = Entry(LOW, 0, None)
        assert e.key.is_low


class TestLookupReply:
    def test_beats_none(self):
        assert LookupReply(True, 1, "v").beats(None)

    def test_higher_version_beats(self):
        a = LookupReply(True, 2, "new")
        b = LookupReply(False, 1)
        assert a.beats(b)
        assert not b.beats(a)

    def test_gap_reply_beats_stale_entry(self):
        # The crux of the algorithm: a "not present" reply with a higher
        # gap version must supersede a ghost entry's version.
        ghost = LookupReply(True, 1, "ghost")
        gap = LookupReply(False, 2)
        assert gap.beats(ghost)

    def test_tie_keeps_first(self):
        a = LookupReply(True, 3, "same")
        b = LookupReply(True, 3, "same")
        assert not a.beats(b)  # quorum merge keeps the earlier reply


class TestRecordShapes:
    def test_neighbor_reply_fields(self):
        r = NeighborReply(wrap("a"), 4, 2)
        assert r.key == wrap("a") and r.entry_version == 4 and r.gap_version == 2

    def test_suite_lookup_reply_defaults(self):
        r = SuiteLookupReply(False, 0)
        assert r.value is None

    def test_real_neighbor_fields(self):
        r = RealNeighbor(wrap("p"), "val", 5, 9)
        assert r.max_gap_version == 9
