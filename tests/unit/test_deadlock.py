"""Unit tests for waits-for-graph deadlock detection."""

import pytest

from repro.core.keys import KeyRange
from repro.txn.deadlock import WaitsForGraph, detect_deadlock
from repro.txn.locks import LockMode, LockTable


class TestWaitsForGraph:
    def test_no_cycle(self):
        g = WaitsForGraph([(1, 2), (2, 3)])
        assert g.find_cycle() is None

    def test_two_cycle(self):
        g = WaitsForGraph([(1, 2), (2, 1)])
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_three_cycle(self):
        g = WaitsForGraph([(1, 2), (2, 3), (3, 1)])
        assert set(g.find_cycle()) == {1, 2, 3}

    def test_cycle_in_larger_graph(self):
        g = WaitsForGraph([(1, 2), (2, 3), (5, 6), (3, 2), (6, 7)])
        cycle = g.find_cycle()
        assert set(cycle) == {2, 3}

    def test_self_edges_ignored(self):
        g = WaitsForGraph([(1, 1)])
        assert g.find_cycle() is None

    def test_victim_is_youngest(self):
        g = WaitsForGraph()
        assert g.pick_victim((3, 9, 5)) == 9

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            WaitsForGraph().pick_victim(())

    def test_disconnected_components(self):
        g = WaitsForGraph([(1, 2), (3, 4), (4, 3)])
        assert set(g.find_cycle()) == {3, 4}


class TestDetectDeadlock:
    def test_no_deadlock_returns_none(self):
        assert detect_deadlock([[(1, 2)], [(2, 3)]]) is None

    def test_cross_table_cycle_found(self):
        # T1 waits for T2 at one representative, T2 for T1 at another —
        # only the union of the tables reveals the cycle.
        found = detect_deadlock([[(1, 2)], [(2, 1)]])
        assert found is not None
        cycle, victim = found
        assert set(cycle) == {1, 2}
        assert victim == 2

    def test_real_lock_tables_produce_cycle(self):
        r_a, r_b = KeyRange.of(1, 2), KeyRange.of(5, 6)
        table1, table2 = LockTable(), LockTable()
        table1.acquire(1, LockMode.REP_MODIFY, r_a)
        table2.acquire(2, LockMode.REP_MODIFY, r_b)
        table1.acquire(2, LockMode.REP_MODIFY, r_a)  # T2 waits at rep 1
        table2.acquire(1, LockMode.REP_MODIFY, r_b)  # T1 waits at rep 2
        found = detect_deadlock(
            [table1.waits_for_edges(), table2.waits_for_edges()]
        )
        assert found is not None
        cycle, victim = found
        assert set(cycle) == {1, 2}
        assert victim == 2
