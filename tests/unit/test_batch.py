"""Unit tests for the grouped quorum round (:mod:`repro.core.batch`).

The engine's contract is *exact* equivalence with sequential execution:
one wave of ops shares a transaction, one read round, one write round,
and one 2PC, yet every op observes the presence/version/value its
predecessors in the wave established, per-op logical errors surface as
outcomes without poisoning neighbours, and the committed state matches
a sequential run bit for bit.  Parameterized over the sim transport
(serial and parallel fan-out) and real asyncio sockets with parallel
fan-out — the combination the batched service front door actually runs.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.batch import BATCH_KINDS, BatchOp, BatchOutcome, execute_batch
from repro.core.errors import (
    KeyAlreadyPresentError,
    KeyNotPresentError,
    QuorumUnavailableError,
)
from repro.core.keys import wrap


def _committed_version(cluster, key):
    """The authoritative (highest present) version of ``key`` — the one
    any read quorum elects, straight off the replica stores."""
    return max(
        reply.version
        for rep in cluster.representatives.values()
        for reply in [rep.store.lookup(wrap(key))]
        if reply.present
    )

MODES = [("sim", "serial"), ("sim", "parallel"), ("asyncio", "parallel")]


@pytest.fixture(params=MODES, ids=[f"{t}-{f}" for t, f in MODES])
def cluster(request):
    transport, fanout = request.param
    with DirectoryCluster.create(
        ClusterSpec(config="3-2-2", seed=11, transport=transport, fanout=fanout)
    ) as c:
        yield c


class TestWaveSemantics:
    def test_mixed_wave_outcomes_in_order(self, cluster):
        suite = cluster.suite
        suite.insert("seed", "s0")
        outcomes = suite.execute_batch(
            [
                BatchOp("lookup", "seed"),
                BatchOp("insert", "a", 1),
                BatchOp("upsert", "seed", "s1"),
                BatchOp("lookup", "a"),
                BatchOp("update", "a", 2),
            ]
        )
        assert [o.op.kind for o in outcomes] == [
            "lookup",
            "insert",
            "upsert",
            "lookup",
            "update",
        ]
        assert all(o.ok for o in outcomes)
        assert outcomes[0].value == (True, "s0")
        # Op 3 observes op 1's insert within the same wave.
        assert outcomes[3].value == (True, 1)
        assert suite.lookup("a") == (True, 2)
        assert suite.lookup("seed") == (True, "s1")

    def test_per_op_errors_do_not_poison_neighbours(self, cluster):
        suite = cluster.suite
        suite.insert("taken", 0)
        outcomes = suite.execute_batch(
            [
                BatchOp("insert", "taken", 1),  # present: per-op error
                BatchOp("insert", "fresh", 2),  # must still commit
                BatchOp("update", "ghost", 3),  # absent: per-op error
                BatchOp("lookup", "taken"),
            ]
        )
        assert isinstance(outcomes[0].error, KeyAlreadyPresentError)
        assert outcomes[1].ok
        assert isinstance(outcomes[2].error, KeyNotPresentError)
        # The failed insert changed nothing: lookup sees the old value.
        assert outcomes[3].value == (True, 0)
        with pytest.raises(KeyAlreadyPresentError):
            outcomes[0].unwrap()
        assert suite.lookup("fresh") == (True, 2)
        assert suite.lookup("ghost") == (False, None)

    def test_same_key_folds_to_final_write(self, cluster):
        suite = cluster.suite
        outcomes = suite.execute_batch(
            [
                BatchOp("upsert", "k", "v1"),
                BatchOp("lookup", "k"),
                BatchOp("upsert", "k", "v2"),
                BatchOp("insert", "k", "v3"),  # now present: error
                BatchOp("upsert", "k", "v4"),
            ]
        )
        assert outcomes[1].value == (True, "v1")
        assert isinstance(outcomes[3].error, KeyAlreadyPresentError)
        assert suite.lookup("k") == (True, "v4")

    def test_folded_versions_match_sequential(self, cluster):
        """The n-th write of a key gets the version n sequential
        transactions would have assigned (gap splits keep the old gap's
        version on both halves, so chaining successor() per fold step is
        exact)."""
        suite = cluster.suite
        suite.execute_batch(
            [BatchOp("upsert", "k", i) for i in range(4)]
        )
        batched = _committed_version(cluster, "k")
        twin = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=11))
        try:
            twin.suite.insert("k", 0)
            for i in range(1, 4):
                twin.suite.update("k", i)
            assert batched == _committed_version(twin, "k")
        finally:
            twin.close()

    def test_equivalence_with_sequential_execution(self, cluster):
        """A seeded script, batched in waves of 8, leaves the identical
        state a sequential twin reaches — per-op errors included."""
        import random

        rng = random.Random(4242)
        script = []
        for _ in range(120):
            kind = rng.choice(BATCH_KINDS)
            key = f"k{rng.randrange(12)}"
            value = rng.randrange(100) if kind != "lookup" else None
            script.append(BatchOp(kind, key, value))

        batched = []
        for start in range(0, len(script), 8):
            batched.extend(cluster.suite.execute_batch(script[start : start + 8]))

        twin = DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=11))
        try:
            sequential = [
                # Reuse the engine's own fallback helper: it runs the
                # plain public methods one op at a time.
                _sequential(twin.suite, op)
                for op in script
            ]
            assert (
                cluster.suite.authoritative_state()
                == twin.suite.authoritative_state()
            )
        finally:
            twin.close()
        for b, s in zip(batched, sequential):
            assert b.value == s.value, b.op
            assert type(b.error) is type(s.error), b.op

    def test_empty_and_tuple_forms(self, cluster):
        suite = cluster.suite
        assert suite.execute_batch([]) == []
        outcomes = suite.execute_batch([("upsert", "t", 9), ("lookup", "t")])
        assert outcomes[1].value == (True, 9)

    def test_unbatchable_kind_rejected(self, cluster):
        with pytest.raises(ValueError, match="unbatchable"):
            cluster.suite.execute_batch([BatchOp("delete", "k")])

    def test_op_counts_match_sequential_accounting(self, cluster):
        suite = cluster.suite
        suite.insert("present", 0)
        base = (
            suite.op_counts.lookups,
            suite.op_counts.inserts,
            suite.op_counts.updates,
            suite.op_counts.failed,
        )
        suite.execute_batch(
            [
                BatchOp("lookup", "present"),
                BatchOp("insert", "present", 1),  # counted + failed
                BatchOp("upsert", "present", 2),  # counts as update
                BatchOp("upsert", "new", 3),  # counts as insert
            ]
        )
        assert (
            suite.op_counts.lookups - base[0],
            suite.op_counts.inserts - base[1],
            suite.op_counts.updates - base[2],
            suite.op_counts.failed - base[3],
        ) == (1, 2, 1, 1)


class TestFallbackAndMetrics:
    def test_quorum_loss_falls_back_per_op(self, cluster):
        suite = cluster.suite
        suite.insert("x", 1)
        cluster.crash("A")
        cluster.crash("B")
        before = suite._batch_fallbacks.value
        outcomes = suite.execute_batch(
            [BatchOp("lookup", "x"), BatchOp("upsert", "x", 2)]
        )
        assert suite._batch_fallbacks.value == before + 1
        # The grouped transaction aborted whole; each op then surfaces
        # its own availability error instead of failing the wave.
        assert all(
            isinstance(o.error, QuorumUnavailableError) for o in outcomes
        )
        cluster.recover("A")
        cluster.recover("B")
        # No partial effects survived the abort.
        assert suite.lookup("x") == (True, 1)
        outcomes = suite.execute_batch([BatchOp("upsert", "x", 2)])
        assert outcomes[0].ok
        assert suite.lookup("x") == (True, 2)

    def test_wave_metrics(self, cluster):
        suite = cluster.suite
        waves, ops = suite._batch_size.n, suite._batch_ops.value
        suite.execute_batch([BatchOp("upsert", f"m{i}", i) for i in range(5)])
        suite.execute_batch([BatchOp("lookup", "m0")])
        assert suite._batch_size.n == waves + 2
        assert suite._batch_ops.value == ops + 6
        snapshot = suite.metrics.snapshot()
        sizes = [
            row
            for name, row in snapshot.items()
            if name.endswith("suite.batch.size") and isinstance(row, dict)
        ]
        assert sizes and sizes[0]["n"] == suite._batch_size.n

    def test_module_function_matches_method(self, cluster):
        outcomes = execute_batch(cluster.suite, [BatchOp("upsert", "f", 1)])
        assert isinstance(outcomes[0], BatchOutcome) and outcomes[0].ok
        assert cluster.suite.lookup("f") == (True, 1)


def _sequential(suite, op):
    """Run one op through the plain public path, capturing its error."""
    outcome = BatchOutcome(op)
    try:
        if op.kind == "lookup":
            outcome.value = suite.lookup(op.key)
        elif op.kind == "insert":
            suite.insert(op.key, op.value)
        elif op.kind == "update":
            suite.update(op.key, op.value)
        else:
            try:
                suite.insert(op.key, op.value)
            except KeyAlreadyPresentError:
                suite.update(op.key, op.value)
    except Exception as exc:  # noqa: BLE001 - mirrored into outcomes
        outcome.error = exc
    return outcome
