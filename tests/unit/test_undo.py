"""Unit tests for undo records."""

from repro.core.entries import Entry
from repro.core.keys import wrap
from repro.storage.sorted_store import SortedStore
from repro.txn.undo import UndoCoalesce, UndoInsert, UndoValue
from tests.conftest import fill_store


class TestUndoInsert:
    def test_undo_new_insert_removes_and_restores_gap(self):
        store = fill_store(SortedStore(), ["a", "c"])
        store.coalesce(wrap("a"), wrap("c"), 7)
        before = store.snapshot()
        result = store.insert(wrap("b"), 8, "B")
        undo = UndoInsert(
            wrap("b"),
            replaced=result.replaced,
            split_gap_version=result.split_gap_version,
        )
        undo.apply(store)
        assert store.snapshot() == before
        assert store.lookup(wrap("b")).version == 7  # merged gap restored

    def test_undo_overwrite_restores_old_entry(self):
        store = SortedStore()
        store.insert(wrap("k"), 1, "old")
        before = store.snapshot()
        result = store.insert(wrap("k"), 2, "new")
        UndoInsert(wrap("k"), replaced=result.replaced).apply(store)
        assert store.snapshot() == before
        reply = store.lookup(wrap("k"))
        assert reply.version == 1 and reply.value == "old"


class TestUndoCoalesce:
    def test_undo_restores_entries_and_gap_versions(self):
        store = fill_store(SortedStore(), ["a", "b", "c", "d"])
        store.coalesce(wrap("b"), wrap("c"), 5)  # vary interior gaps first
        before = store.snapshot()
        result = store.coalesce(wrap("a"), wrap("d"), 9)
        UndoCoalesce(wrap("a"), wrap("d"), result.removed).apply(store)
        assert store.snapshot() == before
        store.check_invariants()

    def test_nested_undo_in_reverse_order(self):
        # A transaction doing insert + coalesce must undo coalesce first,
        # then insert — the exact discipline the representative applies.
        store = fill_store(SortedStore(), ["a", "d"])
        before = store.snapshot()
        ins = store.insert(wrap("b"), 5, "B")
        undo_insert = UndoInsert(
            wrap("b"), replaced=ins.replaced, split_gap_version=ins.split_gap_version
        )
        coal = store.coalesce(wrap("a"), wrap("d"), 9)
        undo_coalesce = UndoCoalesce(wrap("a"), wrap("d"), coal.removed)
        undo_coalesce.apply(store)
        undo_insert.apply(store)
        assert store.snapshot() == before


class TestUndoValue:
    def test_setter_called_with_previous(self):
        holder = {"v": "new"}

        def setter(value):
            holder["v"] = value

        UndoValue(setter, "old").apply(None)
        assert holder["v"] == "old"
