"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterSpec, DirectoryCluster
from repro.core.keys import wrap
from repro.storage.btree import BTreeStore
from repro.storage.sorted_store import SortedStore


@pytest.fixture
def cluster322():
    """A fresh 3-2-2 cluster with deterministic quorum selection."""
    return DirectoryCluster.create(ClusterSpec(config="3-2-2", seed=1234))


@pytest.fixture(
    params=["sorted", "btree", "skiplist"],
    ids=["sorted", "btree", "skiplist"],
)
def store(request):
    """Each concrete store implementation, fresh."""
    from repro.storage.skiplist import SkipListStore

    if request.param == "sorted":
        return SortedStore()
    if request.param == "btree":
        return BTreeStore(order=4)
    return SkipListStore()


def fill_store(store, keys, start_version=1):
    """Insert wrapped integer keys with increasing versions."""
    for i, k in enumerate(keys):
        store.insert(wrap(k), start_version + i, f"value-{k}")
    return store


def scripted_insert(cluster, rep_names, key, version, value):
    """Force an entry onto specific representatives (paper-figure setups).

    Bypasses the suite: used to construct the exact replica states the
    paper's figures show.  Runs through a throwaway transaction so locks
    and WAL stay consistent.
    """
    txn = cluster.suite.txn_manager.begin()
    for name in rep_names:
        place = cluster.suite.placements[name]
        txn.enlist(name, place.node_id, place.service_name)
        cluster.suite.rpc.call(
            place.node_id,
            place.service_name,
            "rep_insert",
            txn.txn_id,
            wrap(key),
            version,
            value,
        )
    cluster.suite.txn_manager.commit(txn)


def rng(seed=0):
    """A seeded random source (alias to keep test intent obvious)."""
    return random.Random(seed)
